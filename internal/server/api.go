package server

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"

	"staticest"
	"staticest/internal/eval"
	"staticest/internal/opt"
	"staticest/internal/profile"
	"staticest/internal/reuse"
	"staticest/internal/suite"
)

// sourceRef names the program a request is about: either a benchmark
// suite member by name, or an ad-hoc C source shipped inline.
type sourceRef struct {
	// Program is a suite program name (see internal/suite).
	Program string `json:"program,omitempty"`
	// Name labels an inline source in diagnostics (default "prog.c").
	Name string `json:"name,omitempty"`
	// Source is inline C source text.
	Source string `json:"source,omitempty"`
}

// resolve returns the referenced program's display name, source bytes,
// and (for suite members) the suite entry.
func (ref *sourceRef) resolve() (name string, src []byte, prog *suite.Program, err error) {
	switch {
	case ref.Program != "" && ref.Source != "":
		return "", nil, nil, errBadRequest("request names both a suite program and inline source; pick one")
	case ref.Program != "":
		p, err := suite.ByName(ref.Program)
		if err != nil {
			return "", nil, nil, errNotFound("%v", err)
		}
		return p.Name + ".c", []byte(p.Source), p, nil
	case ref.Source != "":
		name := ref.Name
		if name == "" {
			name = "prog.c"
		}
		return name, []byte(ref.Source), nil, nil
	default:
		return "", nil, nil, errBadRequest(`request needs "program" (a suite name) or "source" (inline C)`)
	}
}

// --- POST /v1/estimate ------------------------------------------------------

// EstimateRequest asks for the full static-estimate ladder of one
// program.
type EstimateRequest struct {
	sourceRef
	// Top bounds the call-site ranking (default 10, <= 0 for all).
	Top *int `json:"top,omitempty"`
	// Reuse adds static memory reuse-distance summaries (see
	// internal/reuse) to the response.
	Reuse bool `json:"reuse,omitempty"`
}

// FuncEstimate is one function's estimates under every ladder rung.
type FuncEstimate struct {
	Name  string `json:"name"`
	Index int    `json:"index"`
	// Invocations maps estimator name (loop, smart, markov) to the
	// function-invocation estimate.
	Invocations map[string]float64 `json:"invocations"`
	// BlockFreq maps estimator name to per-entry block frequencies
	// indexed by CFG block ID.
	BlockFreq map[string][]float64 `json:"block_freq"`
}

// CallSiteRank is one entry of the global call-site ranking.
type CallSiteRank struct {
	Rank       int     `json:"rank"`
	Site       int     `json:"site"`
	Caller     string  `json:"caller"`
	Callee     string  `json:"callee"`
	Pos        string  `json:"pos"`
	FreqDirect float64 `json:"freq_direct"`
	FreqMarkov float64 `json:"freq_markov"`
}

// ReuseSourceSummary summarizes one estimator's static reuse-distance
// profile: total estimated access mass, the first-touch (cold)
// fraction, and distance quantiles. Quantiles report -1 when they land
// in the cold bucket (no finite distance).
type ReuseSourceSummary struct {
	Source   string  `json:"source"`
	Accesses float64 `json:"accesses"`
	ColdFrac float64 `json:"cold_frac"`
	Median   float64 `json:"median_distance"`
	P90      float64 `json:"p90_distance"`
}

// ReuseRefRank is one memory reference ranked by estimated access
// mass under the smart estimator.
type ReuseRefRank struct {
	Rank      int     `json:"rank"`
	Ref       string  `json:"ref"`
	Footprint float64 `json:"footprint,omitempty"`
	Accesses  float64 `json:"accesses"`
	Median    float64 `json:"median_distance"`
}

// ReuseReport is the estimate endpoint's opt-in reuse section.
type ReuseReport struct {
	Refs    int                  `json:"refs"`
	Sources []ReuseSourceSummary `json:"sources"`
	TopRefs []ReuseRefRank       `json:"top_refs"`
}

// EstimateResponse is the estimate endpoint's reply.
type EstimateResponse struct {
	Program     string         `json:"program"`
	Fingerprint string         `json:"fingerprint"`
	Functions   []FuncEstimate `json:"functions"`
	// CallSites ranks direct call sites by the smart (direct) global
	// frequency estimate, hottest first.
	CallSites []CallSiteRank `json:"call_sites"`
	// Reuse is present when the request set "reuse": true.
	Reuse *ReuseReport `json:"reuse,omitempty"`
}

func (s *Server) handleEstimate(r *http.Request) (any, error) {
	var req EstimateRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	name, src, _, err := req.resolve()
	if err != nil {
		return nil, err
	}
	c, err := s.compileCached(r.Context(), name, src)
	if err != nil {
		return nil, err
	}
	body, err := s.estimateBody(c, &req)
	if err != nil {
		return nil, err
	}
	return rawJSON(body), nil
}

// estimateBody returns the serialized estimate response for one
// compiled unit under the request's options, memoized per
// (fingerprint, options) pair: the first request for a shape pays for
// ranking and marshaling, repeat hits — including batch items — copy
// bytes. Both /v1/estimate and /v1/batch serve from it, which is what
// makes a batch item byte-identical to the equivalent single call.
func (s *Server) estimateBody(c *compiled, req *EstimateRequest) ([]byte, error) {
	top := 10
	if req.Top != nil {
		top = *req.Top
	}
	key := fmt.Sprintf("estimate|top=%d|reuse=%t", top, req.Reuse)
	return c.response(key, func() (any, error) {
		return buildEstimate(c, top, req.Reuse)
	})
}

// buildEstimate computes the estimate response value (the expensive
// part that c.response memoizes in encoded form).
func buildEstimate(c *compiled, top int, withReuse bool) (any, error) {
	est := c.estimates()
	u := c.unit

	resp := &EstimateResponse{Program: u.Name, Fingerprint: c.fingerprint}
	for fi, fd := range u.Sem.Funcs {
		resp.Functions = append(resp.Functions, FuncEstimate{
			Name:  fd.Name(),
			Index: fi,
			Invocations: map[string]float64{
				"loop":   est.Inter.CallSite[fi],
				"smart":  est.Inter.Direct[fi],
				"markov": est.InterMarkov.Inv[fi],
			},
			BlockFreq: map[string][]float64{
				"loop":   est.IntraLoop[fi].BlockFreq,
				"smart":  est.IntraSmart[fi].BlockFreq,
				"markov": est.IntraMarkov[fi].BlockFreq,
			},
		})
	}

	var sites []CallSiteRank
	for _, cs := range u.Sem.CallSites {
		if cs.Indirect() {
			continue
		}
		sites = append(sites, CallSiteRank{
			Site:       cs.ID,
			Caller:     cs.Caller.Name(),
			Callee:     cs.Callee.Name,
			Pos:        cs.Call.Pos().String(),
			FreqDirect: est.SiteFreqDirect[cs.ID],
			FreqMarkov: est.SiteFreqMarkov[cs.ID],
		})
	}
	sort.SliceStable(sites, func(a, b int) bool {
		if sites[a].FreqDirect != sites[b].FreqDirect {
			return sites[a].FreqDirect > sites[b].FreqDirect
		}
		return sites[a].Site < sites[b].Site
	})
	if top > 0 && len(sites) > top {
		sites = sites[:top]
	}
	for i := range sites {
		sites[i].Rank = i + 1
	}
	resp.CallSites = sites
	if withReuse {
		var err error
		resp.Reuse, err = reuseReport(c, top)
		if err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// reuseReport derives the static reuse-distance summaries for the
// estimate endpoint: one line per estimator source over the program's
// memory references, plus the hottest references under smart.
func reuseReport(c *compiled, top int) (*ReuseReport, error) {
	tab := reuse.BuildTable(c.unit.CFG)
	rep := &ReuseReport{Refs: len(tab.Refs)}
	if len(tab.Refs) == 0 {
		return rep, nil
	}
	// Quantiles land in the cold bucket as +Inf, which JSON cannot
	// carry; report -1 instead.
	finite := func(v float64) float64 {
		if math.IsInf(v, 0) {
			return -1
		}
		return v
	}
	var smart *reuse.Profile
	for _, kind := range opt.EstimateKinds {
		src, err := opt.EstimateSource(c.unit.CFG, c.estimates(), kind)
		if err != nil {
			return nil, errUnprocessable("reuse estimate: %v", err)
		}
		p := reuse.Estimate(tab, src)
		if kind == "smart" {
			smart = p
		}
		sum := ReuseSourceSummary{Source: kind, Accesses: p.Accesses()}
		if sum.Accesses > 0 {
			sum.ColdFrac = p.Total.Cold() / sum.Accesses
			sum.Median = finite(p.Total.Quantile(0.5))
			sum.P90 = finite(p.Total.Quantile(0.9))
		}
		rep.Sources = append(rep.Sources, sum)
	}
	order := make([]int, len(tab.Refs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return smart.PerRef[order[a]].Total() > smart.PerRef[order[b]].Total()
	})
	for rank, i := range order {
		if (top > 0 && rank >= top) || smart.PerRef[i].Total() <= 0 {
			break
		}
		rep.TopRefs = append(rep.TopRefs, ReuseRefRank{
			Rank:      rank + 1,
			Ref:       tab.Refs[i].Name(),
			Footprint: tab.Refs[i].Footprint,
			Accesses:  smart.PerRef[i].Total(),
			Median:    finite(smart.PerRef[i].Quantile(0.5)),
		})
	}
	return rep, nil
}

// --- POST /v1/profile -------------------------------------------------------

// ProfileRequest asks for one profiled interpreter run.
type ProfileRequest struct {
	sourceRef
	// Input selects a named suite input (suite programs only; default
	// the program's first input). Mutually exclusive with Args/Stdin.
	Input string `json:"input,omitempty"`
	// Args and Stdin define an ad-hoc input.
	Args  []string `json:"args,omitempty"`
	Stdin string   `json:"stdin,omitempty"`
	// Instrumentation is "full" (default) or "sparse" (planned probes
	// plus exact reconstruction).
	Instrumentation string `json:"instrumentation,omitempty"`
	// MaxSteps bounds block executions (capped by the server's limit).
	MaxSteps int64 `json:"max_steps,omitempty"`
}

// FuncProfile is one function's measured counts.
type FuncProfile struct {
	Name        string    `json:"name"`
	Calls       float64   `json:"calls"`
	BlockCounts []float64 `json:"block_counts"`
}

// ProbeSummary describes the sparse instrumentation actually placed.
type ProbeSummary struct {
	Counters     int     `json:"counters"`
	ArcsTotal    int     `json:"arcs_total"`
	ArcsProbed   int     `json:"arcs_probed"`
	ArcReduction float64 `json:"arc_reduction"`
}

// ProfileResponse is the profile endpoint's reply. Under sparse
// instrumentation the profile fields are the exact reconstruction from
// the probe vector.
type ProfileResponse struct {
	Program         string        `json:"program"`
	Fingerprint     string        `json:"fingerprint"`
	Input           string        `json:"input,omitempty"`
	Instrumentation string        `json:"instrumentation"`
	ExitCode        int           `json:"exit_code"`
	Steps           int64         `json:"steps"`
	Output          string        `json:"output"`
	OutputTruncated bool          `json:"output_truncated,omitempty"`
	Cycles          float64       `json:"cycles"`
	Probes          *ProbeSummary `json:"probes,omitempty"`
	Functions       []FuncProfile `json:"functions"`
}

// maxOutputBytes caps the program output echoed back in a response.
const maxOutputBytes = 64 << 10

func (s *Server) handleProfile(r *http.Request) (any, error) {
	var req ProfileRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	name, src, prog, err := req.resolve()
	if err != nil {
		return nil, err
	}

	// Resolve the input.
	args, stdin := req.Args, []byte(req.Stdin)
	inputName := ""
	if req.Input != "" {
		if prog == nil {
			return nil, errBadRequest(`"input" names a suite input; inline sources take "args"/"stdin"`)
		}
		if len(args) > 0 || len(stdin) > 0 {
			return nil, errBadRequest(`"input" and "args"/"stdin" are mutually exclusive`)
		}
	}
	if prog != nil && len(args) == 0 && len(stdin) == 0 {
		in, err := suiteInput(prog, req.Input)
		if err != nil {
			return nil, err
		}
		args, stdin, inputName = in.Args, in.Stdin, in.Name
	}

	instr := req.Instrumentation
	if instr == "" {
		instr = "full"
	}
	if instr != "full" && instr != "sparse" {
		return nil, errBadRequest(`"instrumentation" must be "full" or "sparse" (got %q)`, instr)
	}

	c, err := s.compileCached(r.Context(), name, src)
	if err != nil {
		return nil, err
	}
	u := c.unit

	maxSteps := s.cfg.MaxSteps
	if req.MaxSteps > 0 && req.MaxSteps < maxSteps {
		maxSteps = req.MaxSteps
	}
	opts := staticest.RunOptions{Args: args, Stdin: stdin, MaxSteps: maxSteps,
		Obs: s.obs, Ctx: r.Context(), Engine: s.cfg.Engine}
	resp := &ProfileResponse{
		Program:         u.Name,
		Fingerprint:     c.fingerprint,
		Input:           inputName,
		Instrumentation: instr,
	}

	var prof *profile.Profile
	if instr == "sparse" {
		plan := c.probePlan()
		opts.Instrumentation = staticest.SparseInstrumentation
		opts.Plan = plan
		res, err := u.Run(opts)
		if err != nil {
			return nil, errUnprocessable("run %s: %v", u.Name, err)
		}
		prof, err = staticest.Reconstruct(plan, res.Probes, nil)
		if err != nil {
			return nil, errUnprocessable("reconstruct %s: %v", u.Name, err)
		}
		fillRunResult(resp, res)
		resp.Probes = &ProbeSummary{
			Counters:     plan.NumProbes,
			ArcsTotal:    plan.TotalArcs,
			ArcsProbed:   plan.ProbedArcs,
			ArcReduction: plan.ArcReduction(),
		}
	} else {
		res, err := u.Run(opts)
		if err != nil {
			return nil, errUnprocessable("run %s: %v", u.Name, err)
		}
		prof = res.Profile
		fillRunResult(resp, res)
	}

	resp.Cycles = prof.Cycles
	for fi, fd := range u.Sem.Funcs {
		resp.Functions = append(resp.Functions, FuncProfile{
			Name:        fd.Name(),
			Calls:       prof.FuncCalls[fi],
			BlockCounts: prof.BlockCounts[fi],
		})
	}
	return resp, nil
}

func fillRunResult(resp *ProfileResponse, res *staticest.RunResult) {
	resp.ExitCode = res.ExitCode
	resp.Steps = res.Steps
	out := res.Output
	if len(out) > maxOutputBytes {
		out = out[:maxOutputBytes]
		resp.OutputTruncated = true
	}
	resp.Output = string(out)
}

// suiteInput resolves a named input ("" means the first).
func suiteInput(p *suite.Program, name string) (*suite.Input, error) {
	if len(p.Inputs) == 0 {
		return nil, errUnprocessable("suite program %s has no inputs", p.Name)
	}
	if name == "" {
		return &p.Inputs[0], nil
	}
	var names []string
	for i := range p.Inputs {
		if p.Inputs[i].Name == name {
			return &p.Inputs[i], nil
		}
		names = append(names, p.Inputs[i].Name)
	}
	return nil, errNotFound("program %s has no input %q (have %v)", p.Name, name, names)
}

// --- POST /v1/optimize ------------------------------------------------------

// OptimizeRequest asks for frequency-guided optimization reports.
type OptimizeRequest struct {
	sourceRef
	// FreqSource picks the driving frequencies: loop, smart, markov
	// (static; any program), profile, xprof (measured; suite programs
	// only), or live (the fleet-ingested aggregate, falling back to
	// smart static estimates for cold fingerprints). Default smart.
	FreqSource string `json:"freq_source,omitempty"`
	// Budget is the inlining size budget in cloned callee blocks
	// (default opt.DefaultBudget).
	Budget int `json:"budget,omitempty"`
	// Reports selects inline, layout, and/or spill (default all that
	// the request's program supports; layout and spill compare against
	// measured profiles and therefore need a suite program).
	Reports []string `json:"reports,omitempty"`
}

// InlineDecisionReport is one ranked inlining choice.
type InlineDecisionReport struct {
	Rank   int     `json:"rank"`
	Site   int     `json:"site"`
	Caller string  `json:"caller"`
	Callee string  `json:"callee"`
	Freq   float64 `json:"freq"`
	Cost   int     `json:"cost"`
}

// InlineReport is the budgeted inlining plan under the chosen source.
type InlineReport struct {
	Budget   int                    `json:"budget"`
	Eligible int                    `json:"eligible"`
	CostUsed int                    `json:"cost_used"`
	Chosen   []InlineDecisionReport `json:"chosen"`
}

// LayoutCandidate scores one block layout by profile-measured
// fall-through.
type LayoutCandidate struct {
	Layout      string  `json:"layout"`
	FallThrough float64 `json:"fall_through"`
	Transfers   float64 `json:"transfers"`
}

// LayoutReport compares the source-driven Pettis–Hansen layout against
// source order and the profile's own layout, plus function ordering.
type LayoutReport struct {
	Candidates []LayoutCandidate `json:"candidates"`
	FuncOrder  []string          `json:"func_order"`
	// CallDistance is the profile-weighted call distance of FuncOrder;
	// IdentityCallDistance is the same for source order.
	CallDistance         float64 `json:"call_distance"`
	IdentityCallDistance float64 `json:"identity_call_distance"`
}

// SpillFuncReport is one function's spill-ranking agreement.
type SpillFuncReport struct {
	Func        string  `json:"func"`
	Invocations float64 `json:"invocations"`
	Vars        int     `json:"vars"`
	Tau         float64 `json:"tau"`
}

// SpillReport compares spill-weight rankings under the chosen source
// against profile-driven rankings (Kendall tau-b per function).
type SpillReport struct {
	Functions []SpillFuncReport `json:"functions"`
	MeanTau   float64           `json:"mean_tau"`
}

// OptimizeResponse is the optimize endpoint's reply; only requested
// reports are present.
type OptimizeResponse struct {
	Program     string `json:"program"`
	Fingerprint string `json:"fingerprint"`
	FreqSource  string `json:"freq_source"`
	// Fallback names the source actually used when freq_source "live"
	// found no ingested profiles for this fingerprint (cold code is
	// served from static estimates).
	Fallback string        `json:"fallback,omitempty"`
	Uploads  int           `json:"uploads,omitempty"`
	Inline   *InlineReport `json:"inline,omitempty"`
	Layout   *LayoutReport `json:"layout,omitempty"`
	Spill    *SpillReport  `json:"spill,omitempty"`
}

func (s *Server) handleOptimize(r *http.Request) (any, error) {
	var req OptimizeRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	name, src, prog, err := req.resolve()
	if err != nil {
		return nil, err
	}
	kind := req.FreqSource
	if kind == "" {
		kind = "smart"
	}
	if err := checkEnum("freq_source", kind, opt.ServingSourceKinds); err != nil {
		return nil, err
	}
	reports := req.Reports
	if len(reports) == 0 {
		reports = []string{"inline"}
		if prog != nil {
			reports = []string{"inline", "layout", "spill"}
		}
	}
	want := map[string]bool{}
	for _, rep := range reports {
		if err := checkEnum("reports", rep, []string{"inline", "layout", "spill"}); err != nil {
			return nil, err
		}
		want[rep] = true
	}

	c, err := s.compileCached(r.Context(), name, src)
	if err != nil {
		return nil, err
	}
	u := c.unit

	// Measured-profile sources and profile-scored reports need the
	// suite's inputs.
	var selfSrc *opt.Source
	needProfile := kind == "profile" || kind == "xprof" || want["layout"] || want["spill"]
	if needProfile {
		if prog == nil {
			return nil, errBadRequest("freq_source %q and the layout/spill reports compare against measured profiles and need a suite program", kind)
		}
		d, err := eval.LoadCached(prog)
		if err != nil {
			return nil, errUnprocessable("profiling %s: %v", prog.Name, err)
		}
		// Score against the cache's unit so all reports share one CFG.
		self, err := profile.Aggregate(d.Profiles)
		if err != nil {
			return nil, errUnprocessable("aggregating %s profiles: %v", prog.Name, err)
		}
		selfSrc = opt.ProfileSource(u.CFG, self, "profile")
	}

	var fsrc *opt.Source
	fallback := ""
	uploads := 0
	switch kind {
	case "profile":
		fsrc = selfSrc
	case opt.LiveSourceName:
		if ls, ok := s.liveSource(c); ok {
			fsrc = ls
			if snap, ok := s.ingest.Snapshot(c.fingerprint); ok {
				uploads = snap.Uploads
			}
		} else {
			// Cold fingerprint: nothing ingested yet, so the static
			// estimator serves until the fleet warms it up.
			fallback = "smart"
			if fsrc, err = opt.EstimateSource(u.CFG, c.estimates(), "smart"); err != nil {
				return nil, errBadRequest("%v", err)
			}
		}
	case "xprof":
		d, _ := eval.LoadCached(prog) // cached above
		held := d.Profiles
		if len(held) > 1 {
			held = held[1:]
		}
		xp, err := profile.Aggregate(held)
		if err != nil {
			return nil, errUnprocessable("aggregating %s profiles: %v", prog.Name, err)
		}
		fsrc = opt.ProfileSource(u.CFG, xp, "xprof")
	default:
		fsrc, err = opt.EstimateSource(u.CFG, c.estimates(), kind)
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
	}

	resp := &OptimizeResponse{Program: u.Name, Fingerprint: c.fingerprint,
		FreqSource: kind, Fallback: fallback, Uploads: uploads}
	if want["inline"] {
		plan := u.PlanInline(fsrc, req.Budget)
		rep := &InlineReport{
			Budget:   plan.Budget,
			Eligible: len(plan.Eligible),
			CostUsed: plan.CostUsed,
		}
		for i, dec := range plan.Chosen {
			rep.Chosen = append(rep.Chosen, InlineDecisionReport{
				Rank:   i + 1,
				Site:   dec.Site,
				Caller: u.Call.FuncName(dec.Caller),
				Callee: u.Call.FuncName(dec.Callee),
				Freq:   dec.Freq,
				Cost:   dec.Cost,
			})
		}
		resp.Inline = rep
	}
	if want["layout"] {
		rep := &LayoutReport{}
		for _, cand := range []struct {
			name string
			lay  *opt.Layout
		}{
			{"source-order", opt.SourceOrderLayout(u.CFG)},
			{fsrc.Name, opt.ComputeLayout(u.CFG, fsrc, s.obs)},
			{"profile", opt.ComputeLayout(u.CFG, selfSrc, s.obs)},
		} {
			rate, _, total := opt.FallThroughRate(u.CFG, cand.lay, selfSrc)
			rep.Candidates = append(rep.Candidates, LayoutCandidate{
				Layout:      cand.name,
				FallThrough: rate,
				Transfers:   total,
			})
		}
		order := opt.FuncOrder(u.Call, fsrc)
		for _, fi := range order {
			rep.FuncOrder = append(rep.FuncOrder, u.Call.FuncName(fi))
		}
		identity := make([]int, len(order))
		for i := range identity {
			identity[i] = i
		}
		rep.CallDistance = opt.WeightedCallDistance(order, u.Call, selfSrc)
		rep.IdentityCallDistance = opt.WeightedCallDistance(identity, u.Call, selfSrc)
		resp.Layout = rep
	}
	if want["spill"] {
		rep := &SpillReport{}
		var sum float64
		for fi := range u.Sem.Funcs {
			if selfSrc.Func[fi] == 0 {
				continue
			}
			ws := opt.SpillWeights(u.CFG, fi, fsrc)
			wp := opt.SpillWeights(u.CFG, fi, selfSrc)
			if len(ws) < 2 {
				continue
			}
			a := make([]float64, len(ws))
			b := make([]float64, len(ws))
			for i := range ws {
				a[i], b[i] = ws[i].Weight, wp[i].Weight
			}
			tau := opt.KendallTau(a, b)
			rep.Functions = append(rep.Functions, SpillFuncReport{
				Func:        u.Call.FuncName(fi),
				Invocations: selfSrc.Func[fi],
				Vars:        len(ws),
				Tau:         tau,
			})
			sum += tau
		}
		sort.SliceStable(rep.Functions, func(a, b int) bool {
			return rep.Functions[a].Invocations > rep.Functions[b].Invocations
		})
		if len(rep.Functions) > 0 {
			rep.MeanTau = sum / float64(len(rep.Functions))
		}
		resp.Spill = rep
	}
	return resp, nil
}

// checkEnum is cliutil.CheckEnum shaped as a 400.
func checkEnum(field, got string, valid []string) error {
	for _, v := range valid {
		if got == v {
			return nil
		}
	}
	return errBadRequest("%q must be one of %v (got %q)", field, valid, got)
}

// --- GET /v1/explain --------------------------------------------------------

// ExplainBranch is one branch site's prediction joined with its
// measured outcome.
type ExplainBranch struct {
	Site      int     `json:"site"`
	Func      string  `json:"func"`
	Pos       string  `json:"pos"`
	Cond      string  `json:"cond"`
	Heuristic string  `json:"heuristic"`
	ProbTrue  float64 `json:"prob_true"`
	PredTaken bool    `json:"pred_taken"`
	Taken     float64 `json:"taken"`
	Not       float64 `json:"not"`
	Misses    float64 `json:"misses"`
}

// ExplainHeuristic aggregates one heuristic's record.
type ExplainHeuristic struct {
	Heuristic string  `json:"heuristic"`
	Sites     int     `json:"sites"`
	Executed  int     `json:"executed"`
	Dynamic   float64 `json:"dynamic"`
	Hits      float64 `json:"hits"`
	Misses    float64 `json:"misses"`
	MissRate  float64 `json:"miss_rate"`
}

// ExplainFunc is one function's estimate-vs-profile agreement.
type ExplainFunc struct {
	Func       string  `json:"func"`
	Calls      float64 `json:"calls"`
	EstInv     float64 `json:"est_invocations"`
	Blocks     int     `json:"blocks"`
	Score      float64 `json:"score"`
	Divergence float64 `json:"divergence"`
}

// ExplainResponse is the explain endpoint's reply: the drillable
// version of the paper's aggregate miss rates for one suite program.
type ExplainResponse struct {
	Program  string  `json:"program"`
	Input    string  `json:"input"`
	Cutoff   float64 `json:"cutoff"`
	MissRate float64 `json:"miss_rate"`
	// Branches lists the worst-predicted sites (bounded by ?top=N,
	// default 10), sorted by dynamic misses descending.
	Branches   []ExplainBranch    `json:"branches"`
	Heuristics []ExplainHeuristic `json:"heuristics"`
	Functions  []ExplainFunc      `json:"functions"`
}

func (s *Server) handleExplain(r *http.Request) (any, error) {
	q := r.URL.Query()
	progName := q.Get("program")
	if progName == "" {
		return nil, errBadRequest("explain needs ?program=<suite name>")
	}
	p, err := suite.ByName(progName)
	if err != nil {
		return nil, errNotFound("%v", err)
	}
	cutoff := 0.05
	if v := q.Get("cutoff"); v != "" {
		if cutoff, err = strconv.ParseFloat(v, 64); err != nil || cutoff <= 0 || cutoff >= 1 {
			return nil, errBadRequest("cutoff must be a number in (0, 1)")
		}
	}
	top := 10
	if v := q.Get("top"); v != "" {
		if top, err = strconv.Atoi(v); err != nil {
			return nil, errBadRequest("top must be an integer")
		}
	}

	d, err := eval.LoadCached(p)
	if err != nil {
		return nil, errUnprocessable("profiling %s: %v", p.Name, err)
	}
	idx := 0
	if in := q.Get("input"); in != "" {
		found := false
		for i := range d.Profiles {
			if d.Profiles[i].Label == in {
				idx, found = i, true
				break
			}
		}
		if !found {
			_, err := suiteInput(p, in) // render the not-found error
			return nil, err
		}
	}
	rep := eval.Explain(d.Unit, d.Est, d.Profiles[idx], cutoff)

	resp := &ExplainResponse{
		Program:  rep.Program,
		Input:    rep.Profile,
		Cutoff:   rep.Cutoff,
		MissRate: rep.MissRate,
	}
	for i := range rep.Branches {
		if top > 0 && i >= top {
			break
		}
		b := &rep.Branches[i]
		resp.Branches = append(resp.Branches, ExplainBranch{
			Site:      b.ID,
			Func:      b.Func,
			Pos:       b.Pos,
			Cond:      b.Cond,
			Heuristic: b.Heuristic,
			ProbTrue:  b.ProbTrue,
			PredTaken: b.PredTaken,
			Taken:     b.Taken,
			Not:       b.Not,
			Misses:    b.Misses,
		})
	}
	for i := range rep.Heuristics {
		h := &rep.Heuristics[i]
		resp.Heuristics = append(resp.Heuristics, ExplainHeuristic{
			Heuristic: h.Heuristic,
			Sites:     h.Sites,
			Executed:  h.Executed,
			Dynamic:   h.Dynamic,
			Hits:      h.Hits,
			Misses:    h.Misses,
			MissRate:  h.MissRate(),
		})
	}
	for i := range rep.Funcs {
		f := &rep.Funcs[i]
		resp.Functions = append(resp.Functions, ExplainFunc{
			Func:       f.Func,
			Calls:      f.Calls,
			EstInv:     f.EstInv,
			Blocks:     f.Blocks,
			Score:      f.Score,
			Divergence: f.Divergence,
		})
	}
	return resp, nil
}
