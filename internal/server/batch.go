package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// This file is the batch estimation endpoint: POST /v1/batch compiles
// and estimates many sources in one request, amortizing the
// per-request overhead (connection, routing, middleware, semaphore)
// over the whole batch. Items are independent: a source that fails to
// compile yields a per-item error object, never a failed batch, and
// every item resolves through the same compiled-unit cache and
// response memo as /v1/estimate — so a batch item's payload is
// byte-identical to the single-call response for the same (source,
// options) pair (internal/check.BatchOracle pins this).

// BatchRequest asks for estimates of many programs at once. Each item
// is a full EstimateRequest, so items can mix suite programs and inline
// sources with per-item options.
type BatchRequest struct {
	Items []EstimateRequest `json:"items"`
}

// batchResult is one item's outcome while the batch is in flight.
type batchResult struct {
	status int
	body   []byte // encoded estimate body (memoized form) when status == 200
	errMsg string
}

// handleBatch serves POST /v1/batch. The response is hand-assembled
// JSON: each successful item embeds the exact memoized bytes that
// /v1/estimate would serve for it (minus the trailing newline), which
// is what makes per-item byte equality a checkable contract rather
// than a formatting accident.
func (s *Server) handleBatch(r *http.Request) (any, error) {
	var req BatchRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	n := len(req.Items)
	if n == 0 {
		return nil, errUnprocessable(`batch needs at least one entry in "items"`)
	}
	if n > s.cfg.MaxBatchItems {
		return nil, &httpError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("batch of %d items exceeds the %d-item limit", n, s.cfg.MaxBatchItems)}
	}
	s.batchItems.Add(int64(n))

	results := make([]batchResult, n)
	s.runBatch(r.Context(), req.Items, results)

	errCount := 0
	for i := range results {
		if results[i].status != http.StatusOK {
			errCount++
		}
	}
	s.batchItemErrors.Add(int64(errCount))

	var b bytes.Buffer
	fmt.Fprintf(&b, "{\n  \"count\": %d,\n  \"errors\": %d,\n  \"items\": [", n, errCount)
	for i := range results {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    ")
		res := &results[i]
		if res.status == http.StatusOK {
			fmt.Fprintf(&b, `{"index":%d,"status":200,"estimate":`, i)
			b.Write(bytes.TrimRight(res.body, "\n"))
			b.WriteByte('}')
		} else {
			msg, err := json.Marshal(res.errMsg)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&b, `{"index":%d,"status":%d,"error":%s}`, i, res.status, msg)
		}
	}
	b.WriteString("\n  ]\n}\n")
	return rawJSON(b.Bytes()), nil
}

// runBatch fills results[i] for every item, fanning out over a bounded
// worker pool. The batch request already holds one semaphore slot (the
// api middleware acquired it), which drives the first worker; extra
// workers claim additional free slots non-blockingly, so intra-batch
// parallelism uses idle capacity without ever queueing ahead of other
// requests — a saturated server degrades a batch to sequential
// processing instead of starving single calls. Claimed slots are
// released when the batch finishes.
func (s *Server) runBatch(ctx context.Context, items []EstimateRequest, results []batchResult) {
	workers := 1
	maxWorkers := len(items)
	if maxWorkers > s.cfg.MaxConcurrent {
		maxWorkers = s.cfg.MaxConcurrent
	}
	extra := 0
	for workers < maxWorkers {
		select {
		case s.sem <- struct{}{}:
			extra++
			workers++
			continue
		default:
		}
		break
	}
	defer func() {
		for i := 0; i < extra; i++ {
			<-s.sem
		}
	}()

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = s.estimateItem(ctx, &items[i])
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// estimateItem resolves one batch item through the unit cache and the
// response memo, mapping failures to the status the equivalent single
// call would get.
func (s *Server) estimateItem(ctx context.Context, item *EstimateRequest) batchResult {
	if err := ctx.Err(); err != nil {
		return batchResult{status: http.StatusServiceUnavailable, errMsg: "cancelled: " + err.Error()}
	}
	name, src, _, err := item.resolve()
	if err != nil {
		return batchErr(err)
	}
	c, err := s.compileCached(ctx, name, src)
	if err != nil {
		return batchErr(err)
	}
	body, err := s.estimateBody(c, item)
	if err != nil {
		return batchErr(err)
	}
	return batchResult{status: http.StatusOK, body: body}
}

// batchErr maps an item error to the per-item status exactly as the api
// middleware maps the same error for a single call.
func batchErr(err error) batchResult {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	}
	return batchResult{status: status, errMsg: err.Error()}
}
