package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"encoding/json"

	"staticest/internal/obs"
	"staticest/internal/server"
)

// reportPercentiles publishes a latency histogram's tail as custom
// benchmark metrics; scripts/bench.sh carries them into
// BENCH_serve.json alongside ns/op, so the trajectory tracks tail
// latency and not just the mean.
func reportPercentiles(b *testing.B, h *obs.Histogram) {
	b.ReportMetric(h.Quantile(0.50)*1e9, "p50-ns")
	b.ReportMetric(h.Quantile(0.99)*1e9, "p99-ns")
	b.ReportMetric(h.Quantile(0.999)*1e9, "p999-ns")
}

// BenchmarkServeEstimate measures the serving latency of the cache-hit
// path — the steady state of a long-lived daemon: the unit and its
// estimates are already cached, so each request pays only routing,
// middleware, and (memoized) response bytes. scripts/bench.sh records
// it in the BENCH_serve.json trajectory.
func BenchmarkServeEstimate(b *testing.B) {
	s := server.New(server.Config{Obs: obs.New()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"name":"strchr.c","source":` + jsonString(strchrSrc) + `}`
	do := func() {
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
			strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	do() // warm the cache: the measured loop is pure cache hits
	lat := obs.NewHistogram("estimate_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		do()
		lat.ObserveSince(start)
	}
	b.StopTimer()
	reportPercentiles(b, lat)
	o := s.Observer()
	if miss := o.Counter("server_cache_miss").Value(); miss != 1 {
		b.Fatalf("benchmark left the cache-hit path: %d misses", miss)
	}
}

// BenchmarkServeBatch measures the batch endpoint's amortization: one
// POST /v1/batch with 16 warm items, so the per-request overhead
// (connection, routing, middleware, semaphore) is paid once for 16
// estimates. The ns/item metric is the number to compare against
// BenchmarkServeEstimate's ns/op — the gap is what batching saves.
// scripts/bench.sh records it in the BENCH_serve.json trajectory.
func BenchmarkServeBatch(b *testing.B) {
	const items = 16
	s := server.New(server.Config{Obs: obs.New()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 16 copies of the same warm source: every item is a cache hit, the
	// batch analogue of BenchmarkServeEstimate's steady state.
	item := `{"name":"strchr.c","source":` + jsonString(strchrSrc) + `}`
	body := `{"items":[` + item + strings.Repeat(","+item, items-1) + `]}`
	do := func() {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
			strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	do() // warm the cache: the measured loop is pure cache hits
	lat := obs.NewHistogram("batch_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		do()
		lat.ObserveSince(start)
	}
	b.StopTimer()
	reportPercentiles(b, lat)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*items), "ns/item")
	if miss := s.Observer().Counter("server_cache_miss").Value(); miss != 1 {
		b.Fatalf("benchmark left the cache-hit path: %d misses", miss)
	}
}

// BenchmarkIngest measures the steady-state cost of one fleet upload:
// routing, JSON decoding, probe reconstruction, and the locked merge
// into the live accumulator. The unit is registered up front, so the
// loop never compiles; every iteration carries a fresh upload ID, so
// every request takes the accept path. scripts/bench.sh records it in
// the BENCH_serve.json trajectory.
func BenchmarkIngest(b *testing.B) {
	s := server.New(server.Config{Obs: obs.New()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	vec, _ := strchrVector(b)
	counts, err := json.Marshal(vec.Counts)
	if err != nil {
		b.Fatal(err)
	}

	do := func(id string) {
		body := `{"name":"strchr.c","source":` + jsonString(strchrSrc) +
			`,"upload_id":"` + id + `","label":"bench","counts":` + string(counts) + `}`
		resp, err := http.Post(ts.URL+"/v1/profiles/ingest", "application/json",
			strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	do("warm") // registers the unit; the measured loop never compiles
	lat := obs.NewHistogram("ingest_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		do(fmt.Sprintf("b%d", i))
		lat.ObserveSince(start)
	}
	b.StopTimer()
	reportPercentiles(b, lat)
	if miss := s.Observer().Counter("server_cache_miss").Value(); miss != 1 {
		b.Fatalf("benchmark left the cache-hit path: %d misses", miss)
	}
}
