package server

// Cache-hit scaling benchmarks (white-box: they drive the serving core
// — unit-cache lookup plus memoized response retrieval — without HTTP,
// so the only contended resource is the cache itself). The headline
// comparison is BenchmarkServeEstimateParallel: the same hot-set
// workload against a single-stripe cache (the pre-sharding design,
// every hit serializing on one mutex) and against the striped default.
// Run with -cpu 8 (or higher): under GOMAXPROCS 1 there is nothing to
// contend.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"staticest"
	"staticest/internal/gen"
	"staticest/internal/obs"
)

// benchServer builds a server whose cache holds hotSet prewarmed
// generated programs, returning the fingerprint keys and matching
// requests.
func benchServer(b *testing.B, shards, hotSet int) (*Server, []string, []EstimateRequest) {
	b.Helper()
	s := New(Config{Obs: obs.New(), CacheShards: shards, CacheSize: hotSet * 2})
	keys := make([]string, hotSet)
	reqs := make([]EstimateRequest, hotSet)
	for i := 0; i < hotSet; i++ {
		src := gen.Source(int64(1000 + i))
		name := fmt.Sprintf("bench_%d.c", i)
		c, err := s.compileCached(context.Background(), name, src)
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = staticest.Fingerprint(src)
		reqs[i] = EstimateRequest{}
		if _, err := s.estimateBody(c, &reqs[i]); err != nil {
			b.Fatal(err)
		}
	}
	return s, keys, reqs
}

// serveOne is one steady-state serving operation: resolve the unit
// through the cache and fetch its memoized response body. The compile
// callback must never fire — the set is prewarmed.
func serveOne(s *Server, key string, req *EstimateRequest) error {
	c, _, err := s.cache.get(key, func() (*staticest.Unit, error) {
		return nil, errors.New("benchmark hit the compile path")
	})
	if err != nil {
		return err
	}
	body, err := s.estimateBody(c, req)
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return errors.New("empty body")
	}
	return nil
}

// serveOneBaseline reproduces the pre-sharding serving core exactly:
// the same single cache lookup, but the response body rebuilt — ranking
// re-run, JSON re-encoded — on every hit, the way the server worked
// before response memoization. It is the "single-lock throughput"
// reference the sharded benchmark is measured against.
func serveOneBaseline(s *Server, key string, req *EstimateRequest) error {
	c, _, err := s.cache.get(key, func() (*staticest.Unit, error) {
		return nil, errors.New("benchmark hit the compile path")
	})
	if err != nil {
		return err
	}
	top := 10
	if req.Top != nil {
		top = *req.Top
	}
	v, err := buildEstimate(c, top, req.Reuse)
	if err != nil {
		return err
	}
	body, err := encodeBody(v)
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return errors.New("empty body")
	}
	return nil
}

// BenchmarkServeEstimateParallel is the serving-core scaling benchmark:
// RunParallel over a 64-program hot set in three configurations.
// "single-lock" is the pre-PR design — one stripe, every hit rebuilding
// its response under the old code path. "shards=1" isolates the
// memoization win (one stripe, memoized bodies), and "sharded" is the
// shipped configuration (striped lock + memoized bodies). The
// single-lock vs sharded ratio is the acceptance number; shards=1 vs
// sharded isolates what the lock layout alone buys, which only
// materializes with real CPU parallelism (run with -cpu >= 8 on a
// multicore host — on a single-core host the two tie, since a lock
// nobody can contend costs nothing). scripts/bench.sh records all
// three in the BENCH_serve.json trajectory.
func BenchmarkServeEstimateParallel(b *testing.B) {
	const hotSet = 64
	for _, tc := range []struct {
		name   string
		shards int
		serve  func(*Server, string, *EstimateRequest) error
	}{
		{"single-lock", 1, serveOneBaseline},
		{"shards=1", 1, serveOne},
		{"sharded", 0, serveOne}, // next power of two >= GOMAXPROCS
	} {
		b.Run(tc.name, func(b *testing.B) {
			s, keys, reqs := benchServer(b, tc.shards, hotSet)
			lat := obs.NewHistogram("parallel_serve_seconds")
			var next atomic.Int64
			var failed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine walks the hot set from its own offset,
				// so concurrent goroutines touch different keys (and
				// therefore different shards, when there are shards).
				i := int(next.Add(1)) * 7
				for pb.Next() {
					k := i % hotSet
					i++
					start := time.Now()
					if err := tc.serve(s, keys[k], &reqs[k]); err != nil {
						failed.Add(1)
						return
					}
					lat.ObserveSince(start)
				}
			})
			b.StopTimer()
			if failed.Load() > 0 {
				b.Fatalf("%d serving ops failed", failed.Load())
			}
			if miss := s.misses.Value(); miss != hotSet {
				b.Fatalf("cache misses = %d, want %d (prewarm only)", miss, hotSet)
			}
			reportPercentilesInternal(b, lat)
		})
	}
}

// reportPercentilesInternal mirrors bench_test.go's reportPercentiles
// for the white-box benchmarks (different package halves).
func reportPercentilesInternal(b *testing.B, h *obs.Histogram) {
	b.ReportMetric(h.Quantile(0.50)*1e9, "p50-ns")
	b.ReportMetric(h.Quantile(0.99)*1e9, "p99-ns")
	b.ReportMetric(h.Quantile(0.999)*1e9, "p999-ns")
}
