package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"staticest/internal/obs"
	"staticest/internal/server"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the JSONL sink writes
// from request goroutines while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// traceEvent mirrors the JSONL schema (obs.Event) for decoding.
type traceEvent struct {
	Type   string         `json:"type"`
	Name   string         `json:"name"`
	ID     int64          `json:"id"`
	Parent int64          `json:"parent"`
	Attrs  map[string]any `json:"attrs"`
}

// TestRequestTraceReconstruction is the tracing acceptance test: a
// single profile upload's span tree — server handler, compile,
// interpreter run — must be reconstructible from the JSONL trace by
// request ID. The request carries a W3C traceparent; its trace-id must
// become the request ID, be echoed in the X-Request-ID response
// header, and appear on the root span in the trace.
func TestRequestTraceReconstruction(t *testing.T) {
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	sink := &syncBuffer{}
	o := obs.New(obs.WithSink(obs.NewJSONLSink(sink)))
	_, ts := newTestServer(t, server.Config{Obs: o})

	body := `{"name":"strchr.c","source":` + jsonString(strchrSrc) + `}`
	req, err := http.NewRequest("POST", ts.URL+"/v1/profile", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("profile: %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Request-ID"); got != traceID {
		t.Fatalf("X-Request-ID = %q, want the traceparent trace-id %q", got, traceID)
	}

	// The root span's event is emitted after the response is written;
	// poll the sink briefly for it.
	var events []traceEvent
	var root *traceEvent
	deadline := time.Now().Add(5 * time.Second)
	for root == nil {
		if time.Now().After(deadline) {
			t.Fatalf("no root span with req_id %q in trace:\n%s", traceID, sink.String())
		}
		events = events[:0]
		for _, line := range strings.Split(sink.String(), "\n") {
			if line == "" {
				continue
			}
			var e traceEvent
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				t.Fatalf("bad JSONL line %q: %v", line, err)
			}
			events = append(events, e)
		}
		for i := range events {
			if events[i].Name == "server.profile" && events[i].Attrs["req_id"] == traceID {
				root = &events[i]
			}
		}
		if root == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Reconstruct the tree under the root: every span reachable by
	// parent links from the root's ID.
	children := map[int64][]traceEvent{}
	for _, e := range events {
		if e.Type == "span" {
			children[e.Parent] = append(children[e.Parent], e)
		}
	}
	reach := map[string]bool{}
	var walk func(id int64)
	walk = func(id int64) {
		for _, c := range children[id] {
			reach[c.Name] = true
			walk(c.ID)
		}
	}
	walk(root.ID)

	for _, want := range []string{"compile", "compile.parse", "interp.run"} {
		if !reach[want] {
			t.Errorf("span %q not reachable from the request root; got %v", want, reach)
		}
	}
}

// TestRequestIDFallbacks pins the request-ID ladder: X-Request-ID is
// honored when there is no traceparent, and a bare request gets a
// generated hex ID.
func TestRequestIDFallbacks(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	body := `{"source":` + jsonString(strchrSrc) + `}`

	req, _ := http.NewRequest("POST", ts.URL+"/v1/estimate", strings.NewReader(body))
	req.Header.Set("X-Request-ID", "fleet-worker-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "fleet-worker-7" {
		t.Errorf("X-Request-ID = %q, want the caller's ID echoed", got)
	}

	resp2, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", got)
	}
}

// TestDebugStatus checks the ops snapshot after known traffic: one
// compile miss plus one cache hit, latency summaries for the touched
// endpoint, and live runtime stats.
func TestDebugStatus(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	body := `{"source":` + jsonString(strchrSrc) + `}`
	for i := 0; i < 2; i++ {
		if status, b := post(t, ts.URL+"/v1/estimate", body); status != 200 {
			t.Fatalf("estimate: %d %s", status, b)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Cache         struct {
			Units    int     `json:"units"`
			Hits     int64   `json:"hits"`
			Misses   int64   `json:"misses"`
			HitRatio float64 `json:"hit_ratio"`
			Compile  struct {
				Count int64 `json:"count"`
			} `json:"compile_seconds"`
		} `json:"cache"`
		Ingest struct {
			Rejects map[string]int64 `json:"rejects"`
		} `json:"ingest"`
		Endpoints map[string]struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"endpoints"`
		Runtime struct {
			Goroutines     int    `json:"goroutines"`
			HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.HitRatio != 0.5 {
		t.Errorf("hit_ratio = %v, want 0.5", st.Cache.HitRatio)
	}
	if st.Cache.Compile.Count != 1 {
		t.Errorf("compile_seconds.count = %d, want 1", st.Cache.Compile.Count)
	}
	ep, ok := st.Endpoints["estimate"]
	if !ok || ep.Count != 2 {
		t.Errorf("endpoints[estimate] = %+v (ok=%v), want count 2", ep, ok)
	}
	if ep.P50 <= 0 || ep.P99 < ep.P50 {
		t.Errorf("estimate latency summary implausible: p50=%v p99=%v", ep.P50, ep.P99)
	}
	if _, ok := st.Ingest.Rejects["duplicate"]; !ok {
		t.Errorf("rejects map missing pre-registered reason: %v", st.Ingest.Rejects)
	}
	if st.Runtime.Goroutines <= 0 || st.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime stats empty: %+v", st.Runtime)
	}
}

// TestDebugSlow checks the slow-request ring: after serving requests,
// /v1/debug/slow returns their span trees, slowest first, each rooted
// at the endpoint's server span with the compile under it.
func TestDebugSlow(t *testing.T) {
	_, ts := newTestServer(t, server.Config{SlowRingSize: 4})
	body := `{"source":` + jsonString(strchrSrc) + `}`
	if status, b := post(t, ts.URL+"/v1/estimate", body); status != 200 {
		t.Fatalf("estimate: %d %s", status, b)
	}

	resp, err := http.Get(ts.URL + "/v1/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var slow server.SlowResponse
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	if slow.Capacity != 4 {
		t.Errorf("capacity = %d, want 4", slow.Capacity)
	}
	if len(slow.Requests) == 0 {
		t.Fatal("slow ring is empty after a served request")
	}
	for i := 1; i < len(slow.Requests); i++ {
		if slow.Requests[i].DurUS > slow.Requests[i-1].DurUS {
			t.Errorf("slow ring not sorted: entry %d is slower than entry %d", i, i-1)
		}
	}
	first := slow.Requests[0]
	if first.ReqID == "" || first.Endpoint != "estimate" || first.Status != 200 {
		t.Errorf("slow entry = %+v, want a completed estimate with a request ID", first)
	}
	if first.Trace == nil || first.Trace.Name != "server.estimate" {
		t.Fatalf("slow entry trace root = %+v, want server.estimate", first.Trace)
	}
	names := map[string]bool{}
	var walk func(n *server.SpanNode)
	walk = func(n *server.SpanNode) {
		names[n.Name] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(first.Trace)
	if !names["compile"] {
		t.Errorf("slow trace missing compile span: %v", names)
	}
}

// TestMetricsHistogramFamilies pins the /metrics exposition of the new
// observability families: per-endpoint latency histograms with their
// cumulative bucket ladders, response-class counters, the cache-path
// histograms, and the runtime gauges.
func TestMetricsHistogramFamilies(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	if status, b := post(t, ts.URL+"/v1/estimate", `{"source":`+jsonString(strchrSrc)+`}`); status != 200 {
		t.Fatalf("estimate: %d %s", status, b)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE server_request_seconds histogram",
		`server_request_seconds_bucket{endpoint="estimate",le="+Inf"} 1`,
		`server_request_seconds_count{endpoint="estimate"} 1`,
		`server_responses_total{endpoint="estimate",class="2xx"} 1`,
		"# TYPE server_compile_seconds histogram",
		"server_compile_seconds_count 1",
		"# TYPE server_cache_hit_seconds histogram",
		`ingest_rejects_total{reason="duplicate"} 0`,
		"# TYPE runtime_goroutines gauge",
		"# TYPE runtime_heap_alloc_bytes gauge",
		"# TYPE runtime_gc_pause_seconds_total gauge",
	} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every line parses as either a comment or "<series> <value>".
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}
