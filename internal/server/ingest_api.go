package server

import (
	"context"
	"errors"
	"net/http"

	"staticest/internal/eval"
	"staticest/internal/ingest"
	"staticest/internal/opt"
	"staticest/internal/probes"
)

// This file is the serving side of the PGO loop: fleet clients upload
// sparse probe vectors (POST /v1/profiles/ingest), the store merges
// them into live per-unit aggregates, and /v1/profiles/stats reports
// each aggregate plus — on request — the decision-agreement rows the
// offline eval harness computes, recalculated from the live aggregate.

// --- POST /v1/profiles/ingest -----------------------------------------------

// IngestEscape mirrors probes.Escape in the wire format.
type IngestEscape struct {
	Func  int `json:"func"`
	Block int `json:"block"`
}

// IngestRequest uploads one sparse run. The unit is identified by
// fingerprint; a request may instead (or additionally) carry the
// source, which registers the unit on first contact — after that,
// fleet members upload vectors against the bare fingerprint.
type IngestRequest struct {
	sourceRef
	// Fingerprint identifies an already-registered (or cached) unit.
	Fingerprint string `json:"fingerprint,omitempty"`
	// UploadID deduplicates retries: a non-empty ID is accepted at most
	// once per unit (replays get 409).
	UploadID string `json:"upload_id,omitempty"`
	// Label names the run's input in the aggregate's merge order.
	Label string `json:"label,omitempty"`
	// Counts is the probe vector, indexed by the unit's plan.
	Counts []float64 `json:"counts"`
	// Escapes lists frames unwound by exit(), outermost first.
	Escapes []IngestEscape `json:"escapes,omitempty"`
}

// IngestResponse acknowledges one accepted upload.
type IngestResponse struct {
	Fingerprint string `json:"fingerprint"`
	Program     string `json:"program"`
	Uploads     int    `json:"uploads"`
	Epoch       uint64 `json:"epoch"`
}

// resolveIngestUnit maps an ingest request to a registered live unit,
// registering it from inline source, suite name, or the compile cache
// as needed, and returns its fingerprint.
func (s *Server) resolveIngestUnit(ctx context.Context, req *IngestRequest) (string, error) {
	if req.Program != "" || req.Source != "" {
		name, src, _, err := req.resolve()
		if err != nil {
			return "", err
		}
		c, err := s.compileCached(ctx, name, src)
		if err != nil {
			return "", err
		}
		if req.Fingerprint != "" && req.Fingerprint != c.fingerprint {
			return "", errUnprocessable("fingerprint %.12s does not match the supplied source (%.12s)",
				req.Fingerprint, c.fingerprint)
		}
		s.registerLive(c)
		return c.fingerprint, nil
	}
	if req.Fingerprint == "" {
		return "", errBadRequest(`ingest needs "fingerprint", "program", or "source"`)
	}
	if s.ingest.Registered(req.Fingerprint) {
		return req.Fingerprint, nil
	}
	// A fingerprint the server has compiled before (estimate/optimize)
	// but never ingested: promote it from the compile cache.
	if c, ok := s.cache.lookup(req.Fingerprint); ok {
		s.registerLive(c)
		return c.fingerprint, nil
	}
	return "", errNotFound("unknown fingerprint %.12s: upload the source once (or query it first)",
		req.Fingerprint)
}

// registerLive registers c with the ingest store and pins it so LRU
// eviction cannot orphan a live aggregate.
func (s *Server) registerLive(c *compiled) {
	s.ingest.Register(c.fingerprint, c.unit.Name, c.probePlan())
	s.liveUnits.Store(c.fingerprint, c)
}

// liveUnit returns the pinned compiled unit of an ingested fingerprint.
func (s *Server) liveUnit(fp string) (*compiled, bool) {
	if v, ok := s.liveUnits.Load(fp); ok {
		return v.(*compiled), true
	}
	return nil, false
}

func (s *Server) handleIngest(r *http.Request) (any, error) {
	var req IngestRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	fp, err := s.resolveIngestUnit(r.Context(), &req)
	if err != nil {
		return nil, err
	}
	vec := &probes.Vector{Counts: req.Counts}
	for _, e := range req.Escapes {
		vec.Escapes = append(vec.Escapes, probes.Escape{Func: e.Func, Block: e.Block})
	}
	rcpt, err := s.ingest.IngestCtx(r.Context(), fp,
		ingest.Upload{ID: req.UploadID, Label: req.Label, Vector: vec})
	switch {
	case err == nil:
	case errors.Is(err, ingest.ErrUnknownFingerprint):
		return nil, errNotFound("%v", err)
	case errors.Is(err, ingest.ErrDuplicate):
		return nil, errConflict("%v", err)
	case errors.Is(err, ingest.ErrShape), errors.Is(err, ingest.ErrInvalid):
		return nil, errUnprocessable("%v", err)
	default:
		return nil, err
	}
	return &IngestResponse{
		Fingerprint: rcpt.Fingerprint,
		Program:     rcpt.Program,
		Uploads:     rcpt.Uploads,
		Epoch:       rcpt.Epoch,
	}, nil
}

// --- GET /v1/profiles/stats -------------------------------------------------

// AgreementRow is one source's decision agreement against the unit's
// live aggregate — the same metrics as the offline eval.OptReport,
// computed by the same code (eval.AgreementRows).
type AgreementRow struct {
	Source        string  `json:"source"`
	InlineOverlap float64 `json:"inline_top10"`
	InlineTau     float64 `json:"inline_tau"`
	SpillTau      float64 `json:"spill_tau"`
	FallThrough   float64 `json:"fall_through"`
}

// StatsUnit describes one live unit.
type StatsUnit struct {
	Fingerprint string `json:"fingerprint"`
	Program     string `json:"program"`
	Uploads     int    `json:"uploads"`
	Epoch       uint64 `json:"epoch"`
	Probes      int    `json:"probes"`
	// MergeOrder and Agreement are present only on single-unit queries
	// (?fingerprint=...).
	MergeOrder []string       `json:"merge_order,omitempty"`
	Agreement  []AgreementRow `json:"agreement,omitempty"`
}

// StatsResponse is the stats endpoint's reply.
type StatsResponse struct {
	Units []StatsUnit `json:"units"`
}

func (s *Server) handleStats(r *http.Request) (any, error) {
	q := r.URL.Query()
	fp := q.Get("fingerprint")
	if fp == "" {
		resp := &StatsResponse{Units: []StatsUnit{}}
		for _, st := range s.ingest.Stats() {
			resp.Units = append(resp.Units, StatsUnit{
				Fingerprint: st.Fingerprint,
				Program:     st.Program,
				Uploads:     st.Uploads,
				Epoch:       st.Epoch,
				Probes:      st.NumProbes,
			})
		}
		return resp, nil
	}

	c, ok := s.liveUnit(fp)
	if !ok {
		return nil, errNotFound("no live aggregate for fingerprint %.12s", fp)
	}
	snap, ok := s.ingest.Snapshot(fp)
	if !ok {
		return nil, errNotFound("fingerprint %.12s is registered but has no uploads yet", fp)
	}
	unit := StatsUnit{
		Fingerprint: fp,
		Program:     c.unit.Name,
		Uploads:     snap.Uploads,
		Epoch:       snap.Epoch,
		Probes:      c.probePlan().NumProbes,
		MergeOrder:  s.ingest.MergeOrder(fp),
	}
	if q.Get("agreement") != "" {
		rows, err := eval.AgreementRows(c.unit.Name, c.unit, c.estimates(), snap.Profile)
		if err != nil {
			return nil, errUnprocessable("agreement for %.12s: %v", fp, err)
		}
		for _, row := range rows {
			if row.Source == "profile" || row.Source == "src-order" {
				continue // layout brackets; not estimate-vs-live agreement
			}
			unit.Agreement = append(unit.Agreement, AgreementRow{
				Source:        row.Source,
				InlineOverlap: row.InlineOverlap,
				InlineTau:     row.InlineTau,
				SpillTau:      row.SpillTau,
				FallThrough:   row.FallThrough,
			})
		}
	}
	return &StatsResponse{Units: []StatsUnit{unit}}, nil
}

// liveSource builds the "live" frequency source of a fingerprint, or
// reports that the fingerprint is cold.
func (s *Server) liveSource(c *compiled) (*opt.Source, bool) {
	snap, ok := s.ingest.Snapshot(c.fingerprint)
	if !ok {
		return nil, false
	}
	return opt.ProfileSource(c.unit.CFG, snap.Profile, opt.LiveSourceName), true
}
