package server_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"staticest/internal/server"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenEndpoints pins each endpoint's exact JSON: the wire format
// is API surface, so an accidental field rename, reordering, or
// numeric drift fails here. Regenerate with -update after intentional
// changes. The pipeline is deterministic end to end (compilation,
// estimation, interpretation), so byte-exact goldens are stable.
func TestGoldenEndpoints(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	// The ingest cases upload a real sparse probe vector; planning and
	// the interpreter are deterministic, so the vector — and therefore
	// every response below — is stable.
	vec, fp := strchrVector(t)
	counts, err := json.Marshal(vec.Counts)
	if err != nil {
		t.Fatal(err)
	}

	// A three-item mixed batch: a valid inline source, a compile error
	// (dropped paren), and a suite program — pinning per-item error
	// isolation and index ordering in one golden.
	batchMixed := `{"items":[` +
		`{"name":"strchr.c","source":` + jsonString(strchrSrc) + `},` +
		`{"source":"int main(void { return 0; }"},` +
		`{"program":"compress","top":3}` +
		`]}`
	oversize := `{"items":[` +
		strings.Repeat(`{"source":"int main(void){return 0;}"},`, 256) +
		`{"source":"int main(void){return 0;}"}]}`

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int // expected response status; 0 means 200
	}{
		{"estimate_strchr", "POST", "/v1/estimate",
			`{"name":"strchr.c","source":` + jsonString(strchrSrc) + `}`, 0},
		{"estimate_reuse_compress", "POST", "/v1/estimate",
			`{"program":"compress","top":5,"reuse":true}`, 0},
		{"profile_full_strchr", "POST", "/v1/profile",
			`{"name":"strchr.c","source":` + jsonString(strchrSrc) + `}`, 0},
		{"profile_sparse_strchr", "POST", "/v1/profile",
			`{"name":"strchr.c","source":` + jsonString(strchrSrc) + `,"instrumentation":"sparse"}`, 0},
		{"optimize_inline_strchr", "POST", "/v1/optimize",
			`{"name":"strchr.c","source":` + jsonString(strchrSrc) + `,"reports":["inline"]}`, 0},
		{"optimize_compress", "POST", "/v1/optimize",
			`{"program":"compress","freq_source":"smart","budget":32}`, 0},
		{"explain_compress", "GET", "/v1/explain?program=compress&top=5", "", 0},
		// The PGO loop, in order: two uploads, the stats view with
		// agreement rows, then optimize serving from the live aggregate
		// (and the static fallback for a cold fingerprint).
		{"ingest_strchr", "POST", "/v1/profiles/ingest",
			`{"name":"strchr.c","source":` + jsonString(strchrSrc) +
				`,"upload_id":"g1","label":"run1","counts":` + string(counts) + `}`, 0},
		{"ingest_strchr_again", "POST", "/v1/profiles/ingest",
			`{"fingerprint":"` + fp + `","upload_id":"g2","label":"run2","counts":` + string(counts) + `}`, 0},
		{"stats_list", "GET", "/v1/profiles/stats", "", 0},
		{"stats_strchr_agreement", "GET", "/v1/profiles/stats?fingerprint=" + fp + "&agreement=1", "", 0},
		{"optimize_live_strchr", "POST", "/v1/optimize",
			`{"name":"strchr.c","source":` + jsonString(strchrSrc) + `,"freq_source":"live","reports":["inline"]}`, 0},
		{"optimize_live_cold_compress", "POST", "/v1/optimize",
			`{"program":"compress","freq_source":"live","reports":["inline"]}`, 0},
		// Batch estimation: the mixed batch pins ordering and per-item
		// error isolation; the edge cases pin the whole-batch failures.
		{"batch_mixed", "POST", "/v1/batch", batchMixed, 0},
		{"batch_empty", "POST", "/v1/batch", `{"items":[]}`, http.StatusUnprocessableEntity},
		{"batch_oversize", "POST", "/v1/batch", oversize, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			switch tc.method {
			case "POST":
				resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			default:
				resp, err = http.Get(ts.URL + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.status
			if want == 0 {
				want = http.StatusOK
			}
			if resp.StatusCode != want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, want, got)
			}
			checkGolden(t, tc.name+".json", got)
		})
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (re-run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from %s (re-run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}
