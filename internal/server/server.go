// Package server is the long-running estimation service: an HTTP/JSON
// daemon exposing the full staticest pipeline — static estimation
// (POST /v1/estimate), interpreter profiling with full or sparse
// instrumentation (POST /v1/profile), the frequency-guided optimizers
// (POST /v1/optimize), and estimator explainability (GET /v1/explain) —
// behind a compile-once/serve-many cache: compiled units live in a
// bounded LRU keyed by source fingerprint with singleflight
// deduplication, so N concurrent requests for the same program trigger
// exactly one compile.
//
// Robustness is part of the contract: every API request runs under a
// panic-to-500 recovery layer, a wall-clock timeout, a request-body
// size cap, and a bounded worker semaphore sized from the same
// parallelism knob as the evaluation harness (eval.Parallelism). The
// server always carries an observability domain: per-endpoint RED
// instrumentation (request/response counters by status class, latency
// histograms), cache-hit vs compile-path latency histograms,
// server_cache_hit / server_cache_miss / server_inflight series, and a
// root span per request carrying a request ID (accepted from
// traceparent or X-Request-ID, echoed back, and propagated via the
// request context through compile, interpretation, and ingest so one
// request is one span tree in the trace). It mounts its
// Prometheus-style exposition (/metrics), an ops snapshot
// (/v1/debug/status), the span trees of the slowest requests
// (/v1/debug/slow), and net/http/pprof (/debug/pprof/) on the same
// mux. Serve drains in-flight requests before returning when its
// context is cancelled (cmd/serve wires that to SIGTERM/SIGINT).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sync"
	"time"

	"staticest"
	"staticest/internal/eval"
	"staticest/internal/ingest"
	"staticest/internal/obs"
)

// Config tunes one Server. The zero value is usable: every field has a
// production default.
type Config struct {
	// CacheSize bounds the compiled-unit LRU (default 64 units).
	CacheSize int
	// CacheShards stripes the unit cache over independently-locked LRU
	// shards. Values are rounded up to a power of two; <= 0 picks the
	// next power of two >= GOMAXPROCS. One shard reproduces the old
	// single-mutex cache exactly.
	CacheShards int
	// MaxBatchItems caps the item count of one POST /v1/batch request;
	// larger batches get 413 (default 256).
	MaxBatchItems int
	// MaxBodyBytes caps request bodies (default 4 MiB — the largest
	// suite source is well under 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout is the per-request wall-clock budget; requests
	// exceeding it get 503 (default 60s).
	RequestTimeout time.Duration
	// MaxConcurrent bounds API requests doing pipeline work at once;
	// excess requests queue on the semaphore for at most QueueWait
	// (default eval.Parallelism(), i.e. the harness's worker-pool
	// width).
	MaxConcurrent int
	// QueueWait bounds how long a request may wait for a worker slot
	// when the semaphore is saturated; past it the server sheds load
	// with 429 + Retry-After instead of queueing indefinitely (default
	// 500ms).
	QueueWait time.Duration
	// DrainTimeout bounds the graceful-shutdown drain (default 30s).
	DrainTimeout time.Duration
	// MaxSteps bounds each served interpreter run's block executions
	// (default 50 million; the interpreter's own default is 200M).
	MaxSteps int64
	// Engine selects the interpreter engine for served runs. The zero
	// value is the bytecode engine; staticest.EngineTree forces the
	// reference tree-walking evaluator (an escape hatch for comparing
	// engines over HTTP — both produce byte-identical responses).
	Engine staticest.Engine
	// SlowRingSize bounds the ring of slowest requests whose span trees
	// are retained for GET /v1/debug/slow (default 16).
	SlowRingSize int
	// RuntimeSampleInterval paces the background runtime collector that
	// refreshes the runtime_* gauges while Serve runs; /metrics and
	// /v1/debug/status also refresh them synchronously per scrape
	// (default 10s).
	RuntimeSampleInterval time.Duration
	// Obs is the observability domain. The server requires one — its
	// cache counters and /metrics exposition are part of the API — so
	// a nil Obs means "create a private Observer", not "disable".
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = eval.Parallelism()
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 500 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if c.SlowRingSize <= 0 {
		c.SlowRingSize = 16
	}
	if c.RuntimeSampleInterval <= 0 {
		c.RuntimeSampleInterval = 10 * time.Second
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	return c
}

// Server serves estimation queries over compiled units.
type Server struct {
	cfg    Config
	obs    *obs.Observer
	cache  *unitCache
	ingest *ingest.Store
	sem    chan struct{}
	mux    *http.ServeMux

	// liveUnits pins the compiled unit of every ingested fingerprint
	// (fingerprint -> *compiled): the LRU may evict cold sources, but a
	// unit with a live aggregate must stay resolvable for
	// /v1/profiles/stats and freq_source "live". Bounded by the number
	// of distinct fingerprints ever ingested.
	liveUnits sync.Map

	hits     *obs.Counter
	misses   *obs.Counter
	inflight *obs.Gauge
	shed     *obs.Counter

	batchItems      *obs.Counter
	batchItemErrors *obs.Counter

	// endpoints lists the API endpoint names in registration order;
	// /v1/debug/status walks it to summarize the per-endpoint latency
	// histograms. Written only during New.
	endpoints []string
	slow      *slowRing
	started   time.Time
}

// New builds a Server and its routing table.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		cache:    newUnitCache(cfg.CacheSize, cfg.CacheShards),
		ingest:   ingest.NewStore(cfg.Obs),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		mux:      http.NewServeMux(),
		hits:     cfg.Obs.Counter("server_cache_hit"),
		misses:   cfg.Obs.Counter("server_cache_miss"),
		inflight: cfg.Obs.Gauge("server_inflight"),
		shed:     cfg.Obs.Counter("server_shed_total"),

		batchItems:      cfg.Obs.Counter("server_batch_items_total"),
		batchItemErrors: cfg.Obs.Counter("server_batch_item_errors_total"),
		slow:            newSlowRing(cfg.SlowRingSize),
		started:         time.Now(),
	}
	s.cache.hitSeconds = cfg.Obs.Histogram("server_cache_hit_seconds")
	s.cache.compileSeconds = cfg.Obs.Histogram("server_compile_seconds")
	s.sampleRuntime()

	s.mux.Handle("POST /v1/estimate", s.api("estimate", s.handleEstimate))
	s.mux.Handle("POST /v1/batch", s.api("batch", s.handleBatch))
	s.mux.Handle("POST /v1/profile", s.api("profile", s.handleProfile))
	s.mux.Handle("POST /v1/optimize", s.api("optimize", s.handleOptimize))
	s.mux.Handle("GET /v1/explain", s.api("explain", s.handleExplain))
	s.mux.Handle("POST /v1/profiles/ingest", s.api("ingest", s.handleIngest))
	s.mux.Handle("GET /v1/profiles/stats", s.api("stats", s.handleStats))

	// Debug surfaces bypass the API middleware on purpose: an operator
	// diagnosing a saturated server must not queue behind the saturated
	// semaphore, and scrapes should not pollute the request metrics.
	s.mux.HandleFunc("GET /v1/debug/status", s.handleDebugStatus)
	s.mux.HandleFunc("GET /v1/debug/slow", s.handleDebugSlow)

	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"cached_units\":%d,\"live_units\":%d}\n",
			s.cache.len(), s.ingest.Len())
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.sampleRuntime() // scrape-fresh runtime_* gauges
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.obs.WriteProm(w)
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Observer returns the server's observability domain.
func (s *Server) Observer() *obs.Observer { return s.obs }

// Handler returns the server's routing table (API endpoints, /healthz,
// /metrics, /debug/pprof/).
func (s *Server) Handler() http.Handler { return s.mux }

// Handle mounts an extra handler on the server's mux (the drain test
// and embedders extending the service use it). It must be called
// before Serve.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// httpError is an error with an HTTP status. Handlers return it to
// pick the response code; any other error maps to 500.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

func errUnprocessable(format string, args ...any) error {
	return &httpError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, args...)}
}

func errConflict(format string, args ...any) error {
	return &httpError{status: http.StatusConflict, msg: fmt.Sprintf(format, args...)}
}

// apiHandler computes one endpoint's response value; the middleware in
// api handles decoding limits, timeouts, recovery, and encoding.
type apiHandler func(r *http.Request) (any, error)

// rawJSON is a pre-encoded response body. A handler returning one tells
// the api middleware to write the bytes verbatim instead of re-encoding
// — the memoized-response path depends on this to serve byte-identical
// bodies without a serialization pass.
type rawJSON []byte

// api wraps an endpoint handler in the middleware stack, innermost
// first: JSON encoding and error mapping, panic-to-500 recovery with
// the inflight gauge and per-endpoint RED instrumentation around it
// (request counters, response counters by status class, a latency
// histogram), the worker semaphore, and the outermost wall-clock
// timeout (http.TimeoutHandler replies 503 and discards the late
// handler's writes; pipeline work is bounded separately by
// Config.MaxSteps).
//
// Every request runs under a root span named "server.<endpoint>"
// carrying the request ID (accepted from traceparent / X-Request-ID or
// generated, and echoed back as X-Request-ID). The span is stored in
// the request context, so every pipeline stage underneath — compile,
// interpreter run, ingest merge — parents from it and the whole
// request is one tree in the trace. The tree is also captured in
// memory and, when the request ranks among the slowest seen, retained
// for GET /v1/debug/slow.
func (s *Server) api(name string, h apiHandler) http.Handler {
	s.endpoints = append(s.endpoints, name)
	requests := s.obs.Counter(obs.Labels("server_requests_total", "endpoint", name))
	errorsC := s.obs.Counter(obs.Labels("server_errors_total", "endpoint", name))
	panics := s.obs.Counter("server_panics_total")
	durations := s.obs.Histogram(obs.Labels("server_request_seconds", "endpoint", name))
	var classes [6]*obs.Counter
	for c := 2; c <= 5; c++ {
		classes[c] = s.obs.Counter(obs.Labels("server_responses_total",
			"endpoint", name, "class", fmt.Sprintf("%dxx", c)))
	}

	inner := func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := requestID(r)
		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w}
		w = sw

		requests.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		sp := s.obs.StartSpan("server."+name, obs.KV("req_id", reqID))
		capture := sp.Capture()
		defer func() {
			sp.End()
			dur := time.Since(start)
			durations.Observe(dur.Seconds())
			if c := sw.status / 100; c >= 2 && c <= 5 {
				classes[c].Add(1)
			}
			s.slow.offer(slowEntry{
				ReqID:    reqID,
				Endpoint: name,
				Status:   sw.status,
				DurUS:    dur.Microseconds(),
				capture:  capture,
			})
		}()
		r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))

		// Bound concurrent pipeline work. A request never queues
		// indefinitely: when the semaphore is saturated it waits at most
		// QueueWait, then is shed with 429 + Retry-After so clients back
		// off instead of piling up. The un-contended path stays a single
		// non-blocking send (no timer allocation).
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			t := time.NewTimer(s.cfg.QueueWait)
			select {
			case s.sem <- struct{}{}:
				t.Stop()
				defer func() { <-s.sem }()
			case <-r.Context().Done():
				t.Stop()
				errorsC.Add(1)
				writeJSONError(w, http.StatusServiceUnavailable, "cancelled while queued")
				return
			case <-t.C:
				errorsC.Add(1)
				s.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				writeJSONError(w, http.StatusTooManyRequests, "server saturated: all workers busy; retry later")
				return
			}
		}

		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		v, err := func() (v any, err error) {
			defer func() {
				if p := recover(); p != nil {
					panics.Add(1)
					err = fmt.Errorf("internal error: %v\n%s", p, debug.Stack())
				}
			}()
			return h(r)
		}()
		if err != nil {
			errorsC.Add(1)
			status := http.StatusInternalServerError
			var he *httpError
			var tooBig *http.MaxBytesError
			switch {
			case errors.As(err, &he):
				status = he.status
			case errors.As(err, &tooBig):
				status = http.StatusRequestEntityTooLarge
			}
			writeJSONError(w, status, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if raw, ok := v.(rawJSON); ok {
			if _, err := w.Write(raw); err != nil {
				errorsC.Add(1)
			}
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			errorsC.Add(1)
		}
	}
	return http.TimeoutHandler(http.HandlerFunc(inner), s.cfg.RequestTimeout,
		`{"error":"request timed out"}`)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// decode unmarshals the request body into v (strictly: unknown fields
// are errors, so typos in request shapes fail loudly instead of being
// silently ignored).
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return err // mapped to 413 by api
		}
		return errBadRequest("decoding request: %v", err)
	}
	return nil
}

// compileCached resolves a source through the unit cache, bumping the
// hit/miss counters. name labels ad-hoc sources (default "prog.c").
// ctx carries the request's span: a cache-miss compile attaches to the
// tree of the request that triggered it (the singleflight leader's,
// when waiters deduplicate onto an in-flight compile).
func (s *Server) compileCached(ctx context.Context, name string, src []byte) (*compiled, error) {
	if name == "" {
		name = "prog.c"
	}
	key := staticest.Fingerprint(src)
	c, missed, err := s.cache.get(key, func() (*staticest.Unit, error) {
		return staticest.CompileCtx(ctx, name, src, s.obs)
	})
	if missed {
		s.misses.Add(1)
	} else {
		s.hits.Add(1)
	}
	if err != nil {
		return nil, errUnprocessable("compile %s: %v", name, err)
	}
	return c, nil
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
// in-flight requests get up to Config.DrainTimeout to complete before
// the listener's goroutines are torn down. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go s.runtimeCollector(ctx)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return hs.Shutdown(dctx)
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}
