package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"staticest/internal/obs"
	"staticest/internal/server"
)

// strchrSrc is the paper's running example — small, deterministic, and
// compiled in every test that needs an ad-hoc source.
const strchrSrc = `
#define NULL 0
char *my_strchr(char *str, int c) {
	while (*str) {
		if (*str == c)
			return str;
		str++;
	}
	return NULL;
}
int main(void) {
	my_strchr("abc", 'a');
	my_strchr("abc", 'b');
	return 0;
}
`

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, b
}

// TestEstimateSingleflight is the acceptance test for the compiled-unit
// cache: 32 concurrent identical estimate requests must trigger exactly
// one compile (server_cache_miss == 1) and produce byte-identical
// responses. Run under -race this also proves the cache and middleware
// are data-race free.
func TestEstimateSingleflight(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, server.Config{Obs: o, MaxConcurrent: 32})

	const n = 32
	body := `{"name":"strchr.c","source":` + jsonString(strchrSrc) + `}`

	var wg sync.WaitGroup
	start := make(chan struct{})
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start // barrier: all requests fire together
			resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: response differs from request 0", i)
		}
	}
	if miss := o.Counter("server_cache_miss").Value(); miss != 1 {
		t.Errorf("server_cache_miss = %d, want exactly 1", miss)
	}
	if hit := o.Counter("server_cache_hit").Value(); hit != n-1 {
		t.Errorf("server_cache_hit = %d, want %d", hit, n-1)
	}
	if inflight := o.Gauge("server_inflight").Value(); inflight != 0 {
		t.Errorf("server_inflight = %v after all requests done, want 0", inflight)
	}
}

// TestGracefulDrain proves Serve waits for in-flight requests when its
// context is cancelled (the SIGTERM path) before returning.
func TestGracefulDrain(t *testing.T) {
	s := server.New(server.Config{Obs: obs.New(), DrainTimeout: 10 * time.Second})
	started := make(chan struct{})
	release := make(chan struct{})
	s.Handle("GET /slow", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "drained-ok")
	}))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	bodyc := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			bodyc <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		bodyc <- string(b)
	}()

	<-started // the request is in flight
	cancel()  // "SIGTERM"

	// Serve must not return while the request is still being handled.
	select {
	case err := <-served:
		t.Fatalf("Serve returned (%v) before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if body := <-bodyc; body != "drained-ok" {
		t.Fatalf("in-flight request got %q, want %q", body, "drained-ok")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the drain completed")
	}
}

// TestCacheEviction pins the LRU bound: with a one-unit, one-shard
// cache, a second source evicts the first, so re-requesting the first
// recompiles. (CacheShards is pinned to 1 so the two sources contend
// for the same shard's single slot regardless of GOMAXPROCS; the
// per-shard bound under striping is covered in cache_test.go.)
func TestCacheEviction(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, server.Config{Obs: o, CacheSize: 1, CacheShards: 1})

	src2 := strings.Replace(strchrSrc, "my_strchr", "my_strchr2", -1)
	reqA := `{"source":` + jsonString(strchrSrc) + `}`
	reqB := `{"source":` + jsonString(src2) + `}`
	for _, body := range []string{reqA, reqB, reqA} {
		if status, b := post(t, ts.URL+"/v1/estimate", body); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, b)
		}
	}
	if miss := o.Counter("server_cache_miss").Value(); miss != 3 {
		t.Errorf("server_cache_miss = %d, want 3 (A, B, A-again after eviction)", miss)
	}
}

// TestRequestErrors exercises the failure modes of the API surface.
func TestRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxBodyBytes: 2048})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"empty request", "POST", "/v1/estimate", `{}`, http.StatusBadRequest},
		{"bad json", "POST", "/v1/estimate", `{"source":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/estimate", `{"sauce":"x"}`, http.StatusBadRequest},
		{"both program and source", "POST", "/v1/estimate",
			`{"program":"compress","source":"int main(void){return 0;}"}`, http.StatusBadRequest},
		{"unknown program", "POST", "/v1/estimate", `{"program":"doom"}`, http.StatusNotFound},
		{"compile error", "POST", "/v1/estimate", `{"source":"int main(void { return 0; }"}`,
			http.StatusUnprocessableEntity},
		{"oversized body", "POST", "/v1/estimate",
			`{"source":` + jsonString("int main(void){return 0;}"+strings.Repeat(" ", 4096)) + `}`,
			http.StatusRequestEntityTooLarge},
		{"batch bad json", "POST", "/v1/batch", `{"items":`, http.StatusBadRequest},
		{"batch unknown field", "POST", "/v1/batch", `{"item":[]}`, http.StatusBadRequest},
		{"bad instrumentation", "POST", "/v1/profile",
			`{"source":"int main(void){return 0;}","instrumentation":"quantum"}`, http.StatusBadRequest},
		{"input on inline source", "POST", "/v1/profile",
			`{"source":"int main(void){return 0;}","input":"ref"}`, http.StatusBadRequest},
		{"unknown input", "POST", "/v1/profile",
			`{"program":"compress","input":"nope"}`, http.StatusNotFound},
		{"bad freq source", "POST", "/v1/optimize",
			`{"source":"int main(void){return 0;}","freq_source":"vibes"}`, http.StatusBadRequest},
		{"profile source needs suite", "POST", "/v1/optimize",
			`{"source":"int main(void){return 0;}","freq_source":"profile"}`, http.StatusBadRequest},
		{"layout needs suite", "POST", "/v1/optimize",
			`{"source":"int main(void){return 0;}","reports":["layout"]}`, http.StatusBadRequest},
		{"explain without program", "GET", "/v1/explain", "", http.StatusBadRequest},
		{"explain unknown program", "GET", "/v1/explain?program=doom", "", http.StatusNotFound},
		{"explain bad cutoff", "GET", "/v1/explain?program=compress&cutoff=7", "", http.StatusBadRequest},
		{"method not allowed", "GET", "/v1/estimate", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			switch tc.method {
			case "POST":
				resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			default:
				resp, err = http.Get(ts.URL + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.status, b)
			}
			if tc.status != http.StatusMethodNotAllowed && !bytes.Contains(b, []byte(`"error"`)) {
				t.Errorf("error body %s does not carry an \"error\" field", b)
			}
		})
	}
}

// TestMetricsAndHealth checks the operational endpoints: the metrics
// exposition carries the serving series and /healthz reports cache
// occupancy.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	if status, b := post(t, ts.URL+"/v1/estimate", `{"source":`+jsonString(strchrSrc)+`}`); status != 200 {
		t.Fatalf("estimate: %d %s", status, b)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, series := range []string{
		"server_cache_miss 1",
		`server_requests_total{endpoint="estimate"} 1`,
		`span_count{span="server.estimate"} 1`,
		"server_inflight 0",
	} {
		if !bytes.Contains(b, []byte(series)) {
			t.Errorf("/metrics missing %q:\n%s", series, b)
		}
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health struct {
		Status      string `json:"status"`
		CachedUnits int    `json:"cached_units"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.CachedUnits != 1 {
		t.Errorf("healthz = %+v, want ok with 1 cached unit", health)
	}
}

// TestRequestTimeout pins the 503 path: a run that cannot finish inside
// the request budget is cut off with the timeout body while the server
// keeps serving.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		RequestTimeout: 50 * time.Millisecond,
		MaxConcurrent:  4,
		// More interpreter work than the request budget allows, but
		// bounded: the abandoned handler finishes (and frees its
		// semaphore slot) shortly after the client's 503.
		MaxSteps: 20_000_000,
	})
	spin := `
int main(void) {
	int i;
	int j;
	int acc;
	acc = 0;
	for (i = 0; i < 100000; i++)
		for (j = 0; j < 100000; j++)
			acc = acc + 1;
	return 0;
}
`
	status, b := post(t, ts.URL+"/v1/profile", `{"source":`+jsonString(spin)+`}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", status, b)
	}
	if !bytes.Contains(b, []byte("timed out")) {
		t.Fatalf("timeout body %q", b)
	}
	// The server keeps serving: once the abandoned run exhausts its
	// step budget, fresh requests go through again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, b := post(t, ts.URL+"/v1/estimate", `{"source":`+jsonString(strchrSrc)+`}`)
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-timeout estimate never recovered: %d %s", status, b)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("marshaling string: %v", err))
	}
	return string(b)
}
