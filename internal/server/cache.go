package server

import (
	"container/list"
	"sync"
	"time"

	"staticest"
	"staticest/internal/core"
	"staticest/internal/obs"
	"staticest/internal/probes"
)

// compiled is one cached compilation: the unit plus lazily-memoized
// derived artifacts (static estimates, probe plan) that every request
// for the same source would otherwise recompute. The memoization makes
// the cache-hit path pure serving: after the first estimate/profile
// request for a source, later ones only rank and marshal.
type compiled struct {
	unit        *staticest.Unit
	fingerprint string

	estOnce sync.Once
	est     *core.Estimates

	planOnce sync.Once
	plan     *probes.Plan
}

// estimates returns the unit's static estimates, computing them on
// first use.
func (c *compiled) estimates() *core.Estimates {
	c.estOnce.Do(func() { c.est = c.unit.Estimate() })
	return c.est
}

// probePlan returns the unit's sparse probe placement, computing it on
// first use.
func (c *compiled) probePlan() *probes.Plan {
	c.planOnce.Do(func() { c.plan = c.unit.PlanProbes() })
	return c.plan
}

// unitCache is a bounded LRU of compiled units keyed by source
// fingerprint, with singleflight deduplication: when N requests for the
// same uncached source arrive concurrently, exactly one compiles and
// the other N-1 block on its result. Compile errors are returned to
// every waiter but never cached — a retry recompiles.
type unitCache struct {
	mu      sync.Mutex
	max     int
	lru     list.List // front = most recently used; values are *compiled
	byKey   map[string]*list.Element
	flights map[string]*flight

	// hitSeconds and compileSeconds split get's latency distribution by
	// path: a cache hit is a map lookup (microseconds), a miss pays for
	// a compile (milliseconds) — one merged histogram would hide the
	// miss tail entirely. Flight waiters observe into compileSeconds:
	// they did not compile, but their latency is compile latency.
	// Nil histograms (tests building a bare cache) record nothing.
	hitSeconds     *obs.Histogram
	compileSeconds *obs.Histogram
}

// flight is one in-progress compile; waiters block on done.
type flight struct {
	done chan struct{}
	c    *compiled
	err  error
}

func newUnitCache(max int) *unitCache {
	if max < 1 {
		max = 1
	}
	return &unitCache{
		max:     max,
		byKey:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// get returns the cached compilation for key, compiling with compile on
// a miss. The bool reports whether this caller performed the compile
// (the cache-miss leader); waiters deduplicated onto another caller's
// in-flight compile report a hit, because no additional work happened.
func (uc *unitCache) get(key string, compile func() (*staticest.Unit, error)) (*compiled, bool, error) {
	start := time.Now()
	uc.mu.Lock()
	if el, ok := uc.byKey[key]; ok {
		uc.lru.MoveToFront(el)
		c := el.Value.(*compiled)
		uc.mu.Unlock()
		uc.hitSeconds.ObserveSince(start)
		return c, false, nil
	}
	if f, ok := uc.flights[key]; ok {
		uc.mu.Unlock()
		<-f.done
		uc.compileSeconds.ObserveSince(start)
		return f.c, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	uc.flights[key] = f
	uc.mu.Unlock()

	unit, err := compile()
	if err == nil {
		f.c = &compiled{unit: unit, fingerprint: key}
	}
	f.err = err

	uc.mu.Lock()
	delete(uc.flights, key)
	if err == nil {
		uc.insertLocked(key, f.c)
	}
	uc.mu.Unlock()
	close(f.done)
	uc.compileSeconds.ObserveSince(start)
	return f.c, true, err
}

// insertLocked adds a fresh entry and evicts from the cold end past max.
func (uc *unitCache) insertLocked(key string, c *compiled) {
	uc.byKey[key] = uc.lru.PushFront(c)
	for uc.lru.Len() > uc.max {
		el := uc.lru.Back()
		uc.lru.Remove(el)
		delete(uc.byKey, el.Value.(*compiled).fingerprint)
	}
}

// lookup returns the cached compilation for key without compiling (and
// without disturbing an in-flight compile). Fingerprint-only requests
// (profile ingest) use it: they can only refer to sources the server
// has already seen.
func (uc *unitCache) lookup(key string) (*compiled, bool) {
	uc.mu.Lock()
	defer uc.mu.Unlock()
	if el, ok := uc.byKey[key]; ok {
		uc.lru.MoveToFront(el)
		return el.Value.(*compiled), true
	}
	return nil, false
}

// len returns the number of cached units.
func (uc *unitCache) len() int {
	uc.mu.Lock()
	defer uc.mu.Unlock()
	return uc.lru.Len()
}
