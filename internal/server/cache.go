package server

import (
	"bytes"
	"container/list"
	"encoding/json"
	"runtime"
	"sync"
	"time"

	"staticest"
	"staticest/internal/core"
	"staticest/internal/obs"
	"staticest/internal/probes"
)

// compiled is one cached compilation: the unit plus lazily-memoized
// derived artifacts (static estimates, probe plan, serialized response
// bodies) that every request for the same source would otherwise
// recompute. The memoization makes the cache-hit path pure serving:
// after the first estimate request for a (source, options) pair, later
// ones only copy bytes.
type compiled struct {
	unit        *staticest.Unit
	fingerprint string

	estOnce sync.Once
	est     *core.Estimates

	planOnce sync.Once
	plan     *probes.Plan

	// memo caches fully-encoded response bodies keyed by an options
	// string (e.g. "estimate|top=10|reuse=false"). Each entry is
	// computed exactly once (sync.Once per key) and then served
	// verbatim, so repeat hits skip both the ranking and the JSON
	// re-serialization. Bounded by maxMemoBodies per unit; overflow
	// requests compute without memoizing.
	memoMu sync.Mutex
	memo   map[string]*memoBody
}

// maxMemoBodies bounds the per-unit response memo. The options space is
// technically unbounded ("top" is an arbitrary int), so past this many
// distinct shapes the cache stops admitting new keys rather than grow
// without limit.
const maxMemoBodies = 16

// memoBody is one memoized response body.
type memoBody struct {
	once sync.Once
	body []byte
	err  error
}

// estimates returns the unit's static estimates, computing them on
// first use.
func (c *compiled) estimates() *core.Estimates {
	c.estOnce.Do(func() { c.est = c.unit.Estimate() })
	return c.est
}

// probePlan returns the unit's sparse probe placement, computing it on
// first use.
func (c *compiled) probePlan() *probes.Plan {
	c.planOnce.Do(func() { c.plan = c.unit.PlanProbes() })
	return c.plan
}

// response returns the encoded response body for key, building and
// encoding it at most once per (unit, key) pair. Build errors are never
// memoized: the failed key is dropped so a retry recomputes.
func (c *compiled) response(key string, build func() (any, error)) ([]byte, error) {
	c.memoMu.Lock()
	if c.memo == nil {
		c.memo = make(map[string]*memoBody)
	}
	m, ok := c.memo[key]
	if !ok {
		if len(c.memo) >= maxMemoBodies {
			c.memoMu.Unlock()
			v, err := build()
			if err != nil {
				return nil, err
			}
			return encodeBody(v)
		}
		m = &memoBody{}
		c.memo[key] = m
	}
	c.memoMu.Unlock()
	m.once.Do(func() {
		v, err := build()
		if err == nil {
			m.body, m.err = encodeBody(v)
		} else {
			m.err = err
		}
		if m.err != nil {
			c.memoMu.Lock()
			delete(c.memo, key)
			c.memoMu.Unlock()
		}
	})
	return m.body, m.err
}

// encodeBody serializes a response value exactly the way the api
// middleware encodes non-memoized responses (two-space indent plus the
// encoder's trailing newline), so memoized and freshly-encoded replies
// are byte-identical.
func encodeBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// unitCache is a bounded LRU of compiled units keyed by source
// fingerprint, striped over N independently-locked shards so concurrent
// cache hits on different units never serialize on one mutex. The
// fingerprint is hex SHA-256, so its leading nibbles are uniformly
// distributed and the shard index is just the fingerprint prefix
// reduced mod the (power-of-two) shard count.
//
// Each shard keeps the original cache's semantics for the keys it owns:
// LRU eviction against a per-shard bound, and singleflight
// deduplication — when N requests for the same uncached source arrive
// concurrently, exactly one compiles and the other N-1 block on its
// result. Identical fingerprints always land on the same shard, so
// striping cannot split a flight. Compile errors are returned to every
// waiter but never cached — a retry recompiles.
type unitCache struct {
	shards []*cacheShard
	mask   uint32

	// hitSeconds and compileSeconds split get's latency distribution by
	// path: a cache hit is a map lookup (microseconds), a miss pays for
	// a compile (milliseconds) — one merged histogram would hide the
	// miss tail entirely. Flight waiters observe into compileSeconds:
	// they did not compile, but their latency is compile latency.
	// Nil histograms (tests building a bare cache) record nothing.
	// Shared across shards (obs.Histogram is lock-free).
	hitSeconds     *obs.Histogram
	compileSeconds *obs.Histogram
}

// cacheShard is one stripe: a bounded LRU plus the in-flight compiles
// for the fingerprints it owns.
type cacheShard struct {
	mu      sync.Mutex
	max     int
	lru     list.List // front = most recently used; values are *compiled
	byKey   map[string]*list.Element
	flights map[string]*flight
}

// flight is one in-progress compile; waiters block on done.
type flight struct {
	done chan struct{}
	c    *compiled
	err  error
}

// newUnitCache builds a cache bounded to max units striped over the
// requested shard count. shards <= 0 picks the next power of two >=
// GOMAXPROCS; any other value is rounded up to a power of two (the
// shard index is a mask). The per-shard bound is ceil(max/shards) with
// a floor of one unit, so the total bound is max rounded up to a
// multiple of the shard count.
func newUnitCache(max, shards int) *unitCache {
	if max < 1 {
		max = 1
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := nextPow2(shards)
	perShard := (max + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	uc := &unitCache{shards: make([]*cacheShard, n), mask: uint32(n - 1)}
	for i := range uc.shards {
		uc.shards[i] = &cacheShard{
			max:     perShard,
			byKey:   make(map[string]*list.Element),
			flights: make(map[string]*flight),
		}
	}
	return uc
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// numShards returns the stripe count.
func (uc *unitCache) numShards() int { return len(uc.shards) }

// shardFor maps a fingerprint to its stripe by prefix: the first eight
// hex characters fold into 32 bits, masked down to the shard index.
// Equal keys always map to the same shard, which is what preserves
// singleflight under striping. Non-hex bytes (ad-hoc test keys) still
// spread via their low nibble.
func (uc *unitCache) shardFor(key string) *cacheShard {
	var v uint32
	for i := 0; i < len(key) && i < 8; i++ {
		v = v<<4 | uint32(hexNibble(key[i]))
	}
	return uc.shards[v&uc.mask]
}

func hexNibble(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	}
	return c & 0xf
}

// get returns the cached compilation for key, compiling with compile on
// a miss. The bool reports whether this caller performed the compile
// (the cache-miss leader); waiters deduplicated onto another caller's
// in-flight compile report a hit, because no additional work happened.
func (uc *unitCache) get(key string, compile func() (*staticest.Unit, error)) (*compiled, bool, error) {
	start := time.Now()
	sh := uc.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.byKey[key]; ok {
		sh.lru.MoveToFront(el)
		c := el.Value.(*compiled)
		sh.mu.Unlock()
		uc.hitSeconds.ObserveSince(start)
		return c, false, nil
	}
	if f, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		<-f.done
		uc.compileSeconds.ObserveSince(start)
		return f.c, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()

	unit, err := compile()
	if err == nil {
		f.c = &compiled{unit: unit, fingerprint: key}
	}
	f.err = err

	sh.mu.Lock()
	delete(sh.flights, key)
	if err == nil {
		sh.insertLocked(key, f.c)
	}
	sh.mu.Unlock()
	close(f.done)
	uc.compileSeconds.ObserveSince(start)
	return f.c, true, err
}

// insertLocked adds a fresh entry and evicts from the cold end past the
// shard's bound.
func (sh *cacheShard) insertLocked(key string, c *compiled) {
	sh.byKey[key] = sh.lru.PushFront(c)
	for sh.lru.Len() > sh.max {
		el := sh.lru.Back()
		sh.lru.Remove(el)
		delete(sh.byKey, el.Value.(*compiled).fingerprint)
	}
}

// lookup returns the cached compilation for key without compiling (and
// without disturbing an in-flight compile). Fingerprint-only requests
// (profile ingest) use it: they can only refer to sources the server
// has already seen.
func (uc *unitCache) lookup(key string) (*compiled, bool) {
	sh := uc.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byKey[key]; ok {
		sh.lru.MoveToFront(el)
		return el.Value.(*compiled), true
	}
	return nil, false
}

// len returns the number of cached units across all shards.
func (uc *unitCache) len() int {
	n := 0
	for _, sh := range uc.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}
