package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"staticest/internal/obs"
)

// TestPanicRecovery proves the middleware turns a handler panic into a
// 500 JSON error, bumps server_panics_total, and leaves the inflight
// gauge balanced — the server must survive its own bugs.
func TestPanicRecovery(t *testing.T) {
	o := obs.New()
	s := New(Config{Obs: o})
	h := s.api("boom", func(_ *http.Request) (any, error) {
		panic("kaboom")
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/boom", strings.NewReader("{}")))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"error"`) || !strings.Contains(body, "kaboom") {
		t.Errorf("body %q does not report the panic", body)
	}
	if n := o.Counter("server_panics_total").Value(); n != 1 {
		t.Errorf("server_panics_total = %d, want 1", n)
	}
	if v := o.Gauge("server_inflight").Value(); v != 0 {
		t.Errorf("server_inflight = %v after panic, want 0", v)
	}
	if n := o.Counter(obs.Labels("server_errors_total", "endpoint", "boom")).Value(); n != 1 {
		t.Errorf("server_errors_total = %d, want 1", n)
	}
}

// TestCacheErrorNotCached pins that failed compiles are never inserted:
// a retry recompiles (two misses), and the cache stays empty.
func TestCacheErrorNotCached(t *testing.T) {
	s := New(Config{Obs: obs.New()})
	bad := []byte("int main(void { return 0; }")
	for i := 0; i < 2; i++ {
		if _, err := s.compileCached("bad.c", bad); err == nil {
			t.Fatal("compile of invalid source succeeded")
		}
	}
	if n := s.misses.Value(); n != 2 {
		t.Errorf("misses = %d, want 2 (errors must not be cached)", n)
	}
	if n := s.cache.len(); n != 0 {
		t.Errorf("cache holds %d units after failed compiles, want 0", n)
	}
}
