package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"staticest/internal/obs"
)

// TestPanicRecovery proves the middleware turns a handler panic into a
// 500 JSON error, bumps server_panics_total, and leaves the inflight
// gauge balanced — the server must survive its own bugs.
func TestPanicRecovery(t *testing.T) {
	o := obs.New()
	s := New(Config{Obs: o})
	h := s.api("boom", func(_ *http.Request) (any, error) {
		panic("kaboom")
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/boom", strings.NewReader("{}")))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"error"`) || !strings.Contains(body, "kaboom") {
		t.Errorf("body %q does not report the panic", body)
	}
	if n := o.Counter("server_panics_total").Value(); n != 1 {
		t.Errorf("server_panics_total = %d, want 1", n)
	}
	if v := o.Gauge("server_inflight").Value(); v != 0 {
		t.Errorf("server_inflight = %v after panic, want 0", v)
	}
	if n := o.Counter(obs.Labels("server_errors_total", "endpoint", "boom")).Value(); n != 1 {
		t.Errorf("server_errors_total = %d, want 1", n)
	}
}

// TestLoadShedding pins the saturation contract: with every worker
// slot held, a request waits at most QueueWait and is then shed with
// 429 + Retry-After (never queued indefinitely), server_shed_total is
// bumped, and a request arriving after a slot frees succeeds.
func TestLoadShedding(t *testing.T) {
	o := obs.New()
	s := New(Config{Obs: o, MaxConcurrent: 1, QueueWait: 30 * time.Millisecond})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	h := s.api("slow", func(_ *http.Request) (any, error) {
		entered <- struct{}{}
		<-release
		return map[string]string{"status": "done"}, nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	first := httptest.NewRecorder()
	go func() {
		defer wg.Done()
		h.ServeHTTP(first, httptest.NewRequest("POST", "/v1/slow", strings.NewReader("{}")))
	}()
	<-entered // the only worker slot is now held

	shedStart := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/slow", strings.NewReader("{}")))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request got status %d, want 429", rec.Code)
	}
	if waited := time.Since(shedStart); waited > 5*time.Second {
		t.Fatalf("shed took %v — request queued far past QueueWait", waited)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
	if !strings.Contains(rec.Body.String(), "saturated") {
		t.Errorf("shed body %q does not explain saturation", rec.Body.String())
	}
	if n := o.Counter("server_shed_total").Value(); n != 1 {
		t.Errorf("server_shed_total = %d, want 1", n)
	}

	close(release)
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("slot-holding request got status %d, want 200", first.Code)
	}
	// The slot is free and release is closed, so a fresh request enters
	// the handler and returns immediately: it must not be shed.
	recovered := httptest.NewRecorder()
	h.ServeHTTP(recovered, httptest.NewRequest("POST", "/v1/slow", strings.NewReader("{}")))
	<-entered
	if recovered.Code != http.StatusOK {
		t.Fatalf("post-recovery request got status %d, want 200", recovered.Code)
	}
	if n := o.Counter("server_shed_total").Value(); n != 1 {
		t.Errorf("server_shed_total = %d after recovery, want still 1", n)
	}
}

// TestCacheErrorNotCached pins that failed compiles are never inserted:
// a retry recompiles (two misses), and the cache stays empty.
func TestCacheErrorNotCached(t *testing.T) {
	s := New(Config{Obs: obs.New()})
	bad := []byte("int main(void { return 0; }")
	for i := 0; i < 2; i++ {
		if _, err := s.compileCached(context.Background(), "bad.c", bad); err == nil {
			t.Fatal("compile of invalid source succeeded")
		}
	}
	if n := s.misses.Value(); n != 2 {
		t.Errorf("misses = %d, want 2 (errors must not be cached)", n)
	}
	if n := s.cache.len(); n != 0 {
		t.Errorf("cache holds %d units after failed compiles, want 0", n)
	}
}
