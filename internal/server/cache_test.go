package server

// White-box concurrency suite for the sharded unit cache. Everything
// here is meant to run under -race: the tests drive the cache the way a
// saturated server does — many goroutines, mixed hit/miss/evict
// traffic, identical keys racing into one flight — and then assert the
// invariants that striping must preserve: per-shard LRU bounds,
// exactly-once compilation per key, and byte-identical memoized bodies.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"staticest"
)

// fakeKey fabricates a fingerprint-shaped hex key whose leading
// characters vary (shardFor routes on the prefix), so consecutive ids
// spread across shards the way real SHA-256 fingerprints do.
func fakeKey(id int) string {
	return fmt.Sprintf("%08x%056x", uint32(id)*2654435761, id)
}

// compileStub returns a distinct dummy unit per call; cache tests never
// estimate through it, they only track identity and count compiles.
func compileStub(calls *atomic.Int64) func() (*staticest.Unit, error) {
	return func() (*staticest.Unit, error) {
		calls.Add(1)
		return &staticest.Unit{}, nil
	}
}

// TestCacheShardDefaults pins the shard-count policy: explicit counts
// round up to a power of two, and the default follows GOMAXPROCS.
func TestCacheShardDefaults(t *testing.T) {
	for _, tc := range []struct{ shards, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := newUnitCache(64, tc.shards).numShards(); got != tc.want {
			t.Errorf("newUnitCache(64, %d): %d shards, want %d", tc.shards, got, tc.want)
		}
	}
	want := nextPow2(runtime.GOMAXPROCS(0))
	if got := newUnitCache(64, 0).numShards(); got != want {
		t.Errorf("default shards = %d, want nextPow2(GOMAXPROCS) = %d", got, want)
	}
}

// TestCacheShardAffinity pins the property singleflight depends on:
// the same key always maps to the same shard.
func TestCacheShardAffinity(t *testing.T) {
	uc := newUnitCache(64, 8)
	for i := 0; i < 256; i++ {
		key := fakeKey(i)
		first := uc.shardFor(key)
		for j := 0; j < 4; j++ {
			if uc.shardFor(key) != first {
				t.Fatalf("key %q mapped to different shards across calls", key)
			}
		}
	}
	// And real-shaped keys actually spread: 256 distinct keys over 8
	// shards should never collapse onto one stripe.
	seen := map[*cacheShard]bool{}
	for i := 0; i < 256; i++ {
		seen[uc.shardFor(fakeKey(i))] = true
	}
	if len(seen) < 2 {
		t.Errorf("256 keys landed on %d shard(s); striping is not spreading", len(seen))
	}
}

// TestCacheSingleflightSharded is the exactly-once contract under
// striping: 32 goroutines requesting the same uncached key race into
// one flight — one compile, one miss leader, and every caller gets the
// same *compiled.
func TestCacheSingleflightSharded(t *testing.T) {
	uc := newUnitCache(64, 8)
	key := fakeKey(42)

	const n = 32
	var calls, leaders atomic.Int64
	results := make([]*compiled, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			c, missed, err := uc.get(key, compileStub(&calls))
			if err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
			if missed {
				leaders.Add(1)
			}
			results[i] = c
		}(i)
	}
	close(start)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("compile ran %d times, want exactly 1", calls.Load())
	}
	if leaders.Load() != 1 {
		t.Errorf("%d callers reported a miss, want exactly 1 leader", leaders.Load())
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *compiled than caller 0", i)
		}
	}
}

// TestCacheCompileErrorNotCached pins that a failed compile is returned
// to every waiter of its flight but never inserted: the next get for
// the same key recompiles.
func TestCacheCompileErrorNotCached(t *testing.T) {
	uc := newUnitCache(64, 4)
	key := fakeKey(7)
	boom := errors.New("boom")

	var calls atomic.Int64
	fail := func() (*staticest.Unit, error) { calls.Add(1); return nil, boom }
	if _, _, err := uc.get(key, fail); !errors.Is(err, boom) {
		t.Fatalf("first get: err = %v, want boom", err)
	}
	if _, ok := uc.lookup(key); ok {
		t.Fatal("failed compile was cached")
	}
	if _, _, err := uc.get(key, fail); !errors.Is(err, boom) {
		t.Fatalf("second get: err = %v, want boom", err)
	}
	if calls.Load() != 2 {
		t.Errorf("compile ran %d times, want 2 (errors are not cached)", calls.Load())
	}
}

// TestCacheShardEviction proves the per-shard LRU bound: a cache of 8
// units over 4 shards holds at most 2 per shard, so flooding one shard
// with fresh keys evicts that shard's cold entries while other shards
// keep theirs.
func TestCacheShardEviction(t *testing.T) {
	uc := newUnitCache(8, 4)
	perShard := uc.shards[0].max
	if perShard != 2 {
		t.Fatalf("per-shard bound = %d, want 2 (8 units / 4 shards)", perShard)
	}

	// Bucket fabricated keys by the shard they map to until one shard
	// has twice its bound.
	target := uc.shardFor(fakeKey(0))
	var targetKeys, otherKeys []string
	for i := 0; len(targetKeys) < 2*perShard || len(otherKeys) == 0; i++ {
		key := fakeKey(i)
		if uc.shardFor(key) == target {
			targetKeys = append(targetKeys, key)
		} else if len(otherKeys) == 0 {
			otherKeys = append(otherKeys, key)
		}
	}

	var calls atomic.Int64
	for _, key := range append(otherKeys, targetKeys...) {
		if _, _, err := uc.get(key, compileStub(&calls)); err != nil {
			t.Fatal(err)
		}
	}

	target.mu.Lock()
	got := target.lru.Len()
	target.mu.Unlock()
	if got > perShard {
		t.Errorf("flooded shard holds %d units, want <= %d", got, perShard)
	}
	// The other shard was untouched by the flood: its entry survives.
	if _, ok := uc.lookup(otherKeys[0]); !ok {
		t.Error("entry on a different shard was evicted by the flood")
	}
	// LRU within the shard: the newest keys are resident, the oldest
	// were evicted.
	for _, key := range targetKeys[len(targetKeys)-perShard:] {
		if _, ok := uc.lookup(key); !ok {
			t.Errorf("recently-inserted key %q missing from its shard", key)
		}
	}
	for _, key := range targetKeys[:len(targetKeys)-perShard] {
		if _, ok := uc.lookup(key); ok {
			t.Errorf("cold key %q should have been evicted", key)
		}
	}
}

// TestCacheConcurrentMixed is the 64-goroutine soak: mixed hit / miss /
// evict traffic across every shard of a deliberately small cache, so
// insertions, evictions, LRU bumps, and flights all interleave. Run
// under -race this is the data-race proof for the striped cache; the
// assertions pin the invariants that must survive the chaos — the
// total bound holds, hot keys compile exactly once each, and every get
// observes a usable result.
func TestCacheConcurrentMixed(t *testing.T) {
	uc := newUnitCache(16, 4)
	bound := 0
	for _, sh := range uc.shards {
		bound += sh.max
	}

	// 8 hot keys are requested by every goroutine (hits + flights);
	// cold keys are unique per iteration (misses + evictions).
	hot := make([]string, 8)
	hotCalls := make([]atomic.Int64, len(hot))
	for i := range hot {
		hot[i] = fakeKey(1_000_000 + i)
	}

	const goroutines = 64
	const iters = 50
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0, 1: // hot traffic: hits after first touch
					k := (g + i) % len(hot)
					c, _, err := uc.get(hot[k], compileStub(&hotCalls[k]))
					if err != nil || c == nil {
						t.Errorf("hot get: c=%v err=%v", c, err)
						return
					}
					if c.fingerprint != hot[k] {
						t.Errorf("hot get returned wrong unit: %q != %q", c.fingerprint, hot[k])
						return
					}
				case 2: // cold traffic: unique keys force evictions
					var calls atomic.Int64
					key := fakeKey(g*10_000 + i)
					if _, _, err := uc.get(key, compileStub(&calls)); err != nil {
						t.Errorf("cold get: %v", err)
						return
					}
				case 3: // reads race the writes
					uc.lookup(hot[(g+i)%len(hot)])
					uc.len()
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	if n := uc.len(); n > bound {
		t.Errorf("cache holds %d units, want <= %d", n, bound)
	}
	// Hot keys may be evicted by cold floods on their shard and then
	// recompiled — but a hot key that was never evicted must have
	// compiled exactly once. The aggregate check: every hot key
	// compiled at least once and (with 16 slots for 8 hot keys plus
	// transient cold traffic) none thrashed unboundedly.
	for i := range hot {
		if hotCalls[i].Load() < 1 {
			t.Errorf("hot key %d never compiled", i)
		}
	}
}

// TestResponseMemo pins the response memoization on one compiled unit:
// concurrent callers for the same options key build and encode exactly
// once and receive the same bytes; distinct keys build independently;
// build errors are never memoized.
func TestResponseMemo(t *testing.T) {
	c := &compiled{unit: &staticest.Unit{}, fingerprint: fakeKey(1)}

	var builds atomic.Int64
	build := func() (any, error) {
		builds.Add(1)
		return map[string]int{"x": 1}, nil
	}

	const n = 32
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			b, err := c.response("estimate|top=10|reuse=false", build)
			if err != nil {
				t.Errorf("response %d: %v", i, err)
				return
			}
			bodies[i] = b
		}(i)
	}
	close(start)
	wg.Wait()

	if builds.Load() != 1 {
		t.Errorf("build ran %d times, want exactly 1", builds.Load())
	}
	for i := 1; i < n; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("caller %d got different bytes than caller 0", i)
		}
	}

	// A different options key is a separate entry.
	if _, err := c.response("estimate|top=3|reuse=false", build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Errorf("second key: build count = %d, want 2", builds.Load())
	}

	// Errors are not memoized: a failed key retries.
	boom := errors.New("boom")
	fails := 0
	failing := func() (any, error) { fails++; return nil, boom }
	for i := 0; i < 2; i++ {
		if _, err := c.response("estimate|top=9|reuse=true", failing); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	if fails != 2 {
		t.Errorf("failing build ran %d times, want 2 (errors are never memoized)", fails)
	}
}

// TestResponseMemoBound pins the overflow policy: past maxMemoBodies
// distinct option keys, response still serves correct bytes but stops
// admitting new memo entries.
func TestResponseMemoBound(t *testing.T) {
	c := &compiled{unit: &staticest.Unit{}, fingerprint: fakeKey(2)}
	for i := 0; i < maxMemoBodies+4; i++ {
		v := i
		if _, err := c.response(fmt.Sprintf("estimate|top=%d|reuse=false", i),
			func() (any, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
	c.memoMu.Lock()
	n := len(c.memo)
	c.memoMu.Unlock()
	if n > maxMemoBodies {
		t.Errorf("memo holds %d entries, want <= %d", n, maxMemoBodies)
	}
	// Overflow keys still compute correctly (just without memoization).
	var calls atomic.Int64
	key := "estimate|top=999|reuse=true"
	for i := 0; i < 2; i++ {
		b, err := c.response(key, func() (any, error) { calls.Add(1); return "v", nil })
		if err != nil || string(b) != "\"v\"\n" {
			t.Fatalf("overflow response: %q, %v", b, err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("overflow key built %d times, want 2 (not memoized past the bound)", calls.Load())
	}
}
