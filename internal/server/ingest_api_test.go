package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"staticest"
	"staticest/internal/obs"
	"staticest/internal/probes"
	"staticest/internal/server"
)

// strchrVector compiles the strchr example out-of-band and produces the
// sparse probe vector a fleet member would upload. Compilation and
// probe planning are deterministic, so the plan here matches the one
// the server builds for the same source.
func strchrVector(t testing.TB) (*probes.Vector, string) {
	t.Helper()
	u, err := staticest.Compile("strchr.c", []byte(strchrSrc))
	if err != nil {
		t.Fatal(err)
	}
	plan := u.PlanProbes()
	res, err := u.Run(staticest.RunOptions{
		Instrumentation: staticest.SparseInstrumentation,
		Plan:            plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Probes, staticest.Fingerprint([]byte(strchrSrc))
}

func ingestBody(t *testing.T, fields map[string]any) string {
	t.Helper()
	b, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestIngestLoop drives the whole PGO loop over HTTP: upload sparse
// vectors, read the live aggregate back through stats, and see
// /v1/optimize serve from the crowd-sourced profile (with the static
// fallback for cold fingerprints).
func TestIngestLoop(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	vec, fp := strchrVector(t)

	// First contact ships the source; the unit registers and merges.
	status, body := post(t, ts.URL+"/v1/profiles/ingest", ingestBody(t, map[string]any{
		"name": "strchr.c", "source": strchrSrc,
		"upload_id": "u1", "label": "run1", "counts": vec.Counts,
	}))
	if status != http.StatusOK {
		t.Fatalf("first ingest: status %d: %s", status, body)
	}
	var ir server.IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Fingerprint != fp || ir.Uploads != 1 {
		t.Fatalf("first receipt = %+v, want fingerprint %.12s uploads 1", ir, fp)
	}

	// Later fleet members upload against the bare fingerprint.
	status, body = post(t, ts.URL+"/v1/profiles/ingest", ingestBody(t, map[string]any{
		"fingerprint": fp, "upload_id": "u2", "label": "run2", "counts": vec.Counts,
	}))
	if status != http.StatusOK {
		t.Fatalf("second ingest: status %d: %s", status, body)
	}

	// Stats: the unit is live with two uploads in merge order.
	resp, err := http.Get(ts.URL + "/v1/profiles/stats?fingerprint=" + fp + "&agreement=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Units) != 1 {
		t.Fatalf("stats units = %d, want 1", len(sr.Units))
	}
	unit := sr.Units[0]
	if unit.Program != "strchr.c" || unit.Uploads != 2 {
		t.Fatalf("stats unit = %+v, want strchr.c with 2 uploads", unit)
	}
	if fmt.Sprint(unit.MergeOrder) != "[run1 run2]" {
		t.Errorf("merge order %v, want [run1 run2]", unit.MergeOrder)
	}
	sources := map[string]bool{}
	for _, row := range unit.Agreement {
		sources[row.Source] = true
		if row.InlineOverlap < 0 || row.InlineOverlap > 1 {
			t.Errorf("agreement %s: overlap %v out of [0,1]", row.Source, row.InlineOverlap)
		}
	}
	for _, want := range []string{"loop", "smart", "markov"} {
		if !sources[want] {
			t.Errorf("agreement rows missing source %q (have %v)", want, sources)
		}
	}

	// Optimize from the live aggregate: warm fingerprint, no fallback.
	status, body = post(t, ts.URL+"/v1/optimize",
		`{"name":"strchr.c","source":`+jsonString(strchrSrc)+`,"freq_source":"live","reports":["inline"]}`)
	if status != http.StatusOK {
		t.Fatalf("optimize live: status %d: %s", status, body)
	}
	var or server.OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if or.FreqSource != "live" || or.Fallback != "" || or.Uploads != 2 {
		t.Fatalf("warm optimize = {source %s, fallback %q, uploads %d}, want live//2",
			or.FreqSource, or.Fallback, or.Uploads)
	}
	if or.Inline == nil {
		t.Fatal("warm optimize returned no inline report")
	}

	// Cold fingerprint: live falls back to static estimates.
	status, body = post(t, ts.URL+"/v1/optimize",
		`{"program":"compress","freq_source":"live","reports":["inline"]}`)
	if status != http.StatusOK {
		t.Fatalf("optimize cold: status %d: %s", status, body)
	}
	var cold server.OptimizeResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.FreqSource != "live" || cold.Fallback != "smart" || cold.Uploads != 0 {
		t.Fatalf("cold optimize = {source %s, fallback %q, uploads %d}, want live/smart/0",
			cold.FreqSource, cold.Fallback, cold.Uploads)
	}
}

// TestIngestValidation pins the defensive contract at the HTTP layer:
// unknown fingerprints 404, replayed upload IDs 409, malformed vectors
// 422 with a distinct reject counter — and none of them disturb the
// live aggregate.
func TestIngestValidation(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, server.Config{Obs: o})
	vec, fp := strchrVector(t)
	ingestURL := ts.URL + "/v1/profiles/ingest"

	// Seed one good upload so later cases have an aggregate to poison.
	if status, body := post(t, ingestURL, ingestBody(t, map[string]any{
		"name": "strchr.c", "source": strchrSrc,
		"upload_id": "good", "label": "seed", "counts": vec.Counts,
	})); status != http.StatusOK {
		t.Fatalf("seed ingest: status %d: %s", status, body)
	}

	cases := []struct {
		name       string
		body       string
		wantStatus int
		counter    string
	}{
		{"unknown fingerprint", ingestBody(t, map[string]any{
			"fingerprint": "0123456789abcdef", "counts": vec.Counts,
		}), http.StatusNotFound, ""},
		{"no identity", ingestBody(t, map[string]any{
			"counts": vec.Counts,
		}), http.StatusBadRequest, ""},
		{"replayed upload id", ingestBody(t, map[string]any{
			"fingerprint": fp, "upload_id": "good", "counts": vec.Counts,
		}), http.StatusConflict, "duplicate"},
		{"shape mismatch", ingestBody(t, map[string]any{
			"fingerprint": fp, "upload_id": "shaped", "counts": vec.Counts[:len(vec.Counts)-1],
		}), http.StatusUnprocessableEntity, "shape"},
		{"invalid escape", ingestBody(t, map[string]any{
			"fingerprint": fp, "upload_id": "escaped", "counts": vec.Counts,
			"escapes": []map[string]int{{"func": 42, "block": 0}},
		}), http.StatusUnprocessableEntity, "invalid"},
		{"fingerprint source mismatch", ingestBody(t, map[string]any{
			"fingerprint": "ffff", "name": "strchr.c", "source": strchrSrc,
			"counts": vec.Counts,
		}), http.StatusUnprocessableEntity, ""},
	}
	for _, tc := range cases {
		var before int64
		if tc.counter != "" {
			before = o.Counter(obs.Labels("ingest_rejects_total", "reason", tc.counter)).Value()
		}
		status, body := post(t, ingestURL, tc.body)
		if status != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.wantStatus, body)
		}
		if tc.counter != "" {
			after := o.Counter(obs.Labels("ingest_rejects_total", "reason", tc.counter)).Value()
			if after != before+1 {
				t.Errorf("%s: reject counter %q went %d -> %d, want +1",
					tc.name, tc.counter, before, after)
			}
		}
	}

	// The aggregate is exactly one upload deep — nothing above merged.
	resp, err := http.Get(ts.URL + "/v1/profiles/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Units) != 1 || sr.Units[0].Uploads != 1 {
		t.Fatalf("stats after rejection storm = %+v, want one unit with 1 upload", sr.Units)
	}
	if got := o.Counter("ingest_uploads_total").Value(); got != 1 {
		t.Errorf("ingest_uploads_total = %d, want 1", got)
	}
}
