package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"staticest/internal/obs"
)

// This file is the server's ops surface: request identity, the slow-
// request ring, GET /v1/debug/status, GET /v1/debug/slow, and the
// runtime collector behind the runtime_* gauges.

// --- request identity -------------------------------------------------------

// requestID extracts the caller's request ID, preferring the W3C
// traceparent trace-id (00-<32 hex>-<16 hex>-<flags>) so the server
// joins an existing distributed trace, then X-Request-ID, and
// generating a fresh random ID otherwise. The ID is echoed back as
// X-Request-ID and attached to the request's root span, which makes a
// request's span tree findable in the JSONL trace by grepping for it.
func requestID(r *http.Request) string {
	if tp := r.Header.Get("traceparent"); tp != "" {
		if id, ok := traceparentID(tp); ok {
			return id
		}
	}
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return sanitizeID(id)
	}
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// traceparentID pulls the trace-id field out of a traceparent header,
// rejecting malformed or all-zero (invalid per spec) IDs.
func traceparentID(tp string) (string, bool) {
	parts := strings.Split(tp, "-")
	if len(parts) < 3 || len(parts[1]) != 32 {
		return "", false
	}
	zero := true
	for i := 0; i < len(parts[1]); i++ {
		c := parts[1][i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", false
		}
		if c != '0' {
			zero = false
		}
	}
	if zero {
		return "", false
	}
	return parts[1], true
}

// sanitizeID bounds a caller-supplied ID and strips characters that
// would corrupt headers or JSONL (IDs are echoed verbatim otherwise).
func sanitizeID(id string) string {
	const maxLen = 64
	if len(id) > maxLen {
		id = id[:maxLen]
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
			return r
		case r == '-' || r == '_' || r == '.':
			return r
		}
		return '_'
	}, id)
}

// statusWriter records the response status code so the middleware can
// count responses by status class after the handler returns.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// --- slow-request ring ------------------------------------------------------

// slowEntry is one retained request: identity, outcome, and the
// captured span subtree (rendered as a tree on demand, not at record
// time — most offered entries are discarded without rendering).
type slowEntry struct {
	ReqID    string `json:"req_id"`
	Endpoint string `json:"endpoint"`
	Status   int    `json:"status"`
	DurUS    int64  `json:"dur_us"`

	capture *obs.SpanCapture
}

// slowRing keeps the K slowest requests seen, sorted slowest-first.
// offer is O(K) worst case with K small (Config.SlowRingSize, default
// 16) and returns in O(1) for the common request that is faster than
// everything retained.
type slowRing struct {
	mu      sync.Mutex
	max     int
	entries []slowEntry
}

func newSlowRing(max int) *slowRing { return &slowRing{max: max} }

// offer proposes a finished request for retention.
func (sr *slowRing) offer(e slowEntry) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if len(sr.entries) >= sr.max && e.DurUS <= sr.entries[len(sr.entries)-1].DurUS {
		return
	}
	i := sort.Search(len(sr.entries), func(i int) bool { return sr.entries[i].DurUS < e.DurUS })
	sr.entries = append(sr.entries, slowEntry{})
	copy(sr.entries[i+1:], sr.entries[i:])
	sr.entries[i] = e
	if len(sr.entries) > sr.max {
		sr.entries = sr.entries[:sr.max]
	}
}

// snapshot copies the retained entries, slowest first.
func (sr *slowRing) snapshot() []slowEntry {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return append([]slowEntry(nil), sr.entries...)
}

// SpanNode is one span in a rendered request tree.
type SpanNode struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanNode    `json:"children,omitempty"`
}

// spanTree reconstructs the span tree from captured end-order events
// by following parent links. The root is the (unique) span whose
// parent is not among the captured events — the request's own span.
func spanTree(events []obs.Event) *SpanNode {
	nodes := make(map[int64]*SpanNode, len(events))
	for _, e := range events {
		nodes[e.ID] = &SpanNode{Name: e.Name, StartUS: e.StartUS, DurUS: e.DurUS, Attrs: e.Attrs}
	}
	var root *SpanNode
	for _, e := range events {
		if parent, ok := nodes[e.Parent]; ok {
			parent.Children = append(parent.Children, nodes[e.ID])
		} else {
			root = nodes[e.ID]
		}
	}
	var sortChildren func(n *SpanNode)
	sortChildren = func(n *SpanNode) {
		sort.SliceStable(n.Children, func(a, b int) bool {
			return n.Children[a].StartUS < n.Children[b].StartUS
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	if root != nil {
		sortChildren(root)
	}
	return root
}

// SlowRequest is one GET /v1/debug/slow entry.
type SlowRequest struct {
	ReqID    string    `json:"req_id"`
	Endpoint string    `json:"endpoint"`
	Status   int       `json:"status"`
	DurUS    int64     `json:"dur_us"`
	Trace    *SpanNode `json:"trace,omitempty"`
}

// SlowResponse is the GET /v1/debug/slow reply: the span trees of the
// slowest requests the server has served, slowest first.
type SlowResponse struct {
	Capacity int           `json:"capacity"`
	Requests []SlowRequest `json:"requests"`
}

func (s *Server) handleDebugSlow(w http.ResponseWriter, _ *http.Request) {
	resp := &SlowResponse{Capacity: s.cfg.SlowRingSize, Requests: []SlowRequest{}}
	for _, e := range s.slow.snapshot() {
		resp.Requests = append(resp.Requests, SlowRequest{
			ReqID:    e.ReqID,
			Endpoint: e.Endpoint,
			Status:   e.Status,
			DurUS:    e.DurUS,
			Trace:    spanTree(e.capture.Events()),
		})
	}
	writeDebugJSON(w, resp)
}

// --- GET /v1/debug/status ---------------------------------------------------

// CacheStatus summarizes the compiled-unit cache.
type CacheStatus struct {
	Units    int         `json:"units"`
	Shards   int         `json:"shards"`
	Hits     int64       `json:"hits"`
	Misses   int64       `json:"misses"`
	HitRatio float64     `json:"hit_ratio"`
	Hit      obs.Summary `json:"hit_seconds"`
	Compile  obs.Summary `json:"compile_seconds"`
}

// BatchStatus summarizes the batch endpoint: items served through
// POST /v1/batch and how many of those yielded per-item errors.
type BatchStatus struct {
	Items      int64 `json:"items"`
	ItemErrors int64 `json:"item_errors"`
}

// IngestStatus summarizes the PGO ingest path.
type IngestStatus struct {
	Units   int              `json:"units"`
	Uploads int64            `json:"uploads"`
	Shed    int64            `json:"shed"`
	Rejects map[string]int64 `json:"rejects"`
}

// RuntimeStatus is the Go runtime snapshot.
type RuntimeStatus struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	GCRuns         uint32  `json:"gc_runs"`
	GCPauseSeconds float64 `json:"gc_pause_seconds_total"`
}

// StatusResponse is the GET /v1/debug/status reply: the one-page ops
// snapshot — is the cache working, is the fleet uploading, where are
// the latency percentiles, is the runtime healthy.
type StatusResponse struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Cache         CacheStatus            `json:"cache"`
	Batch         BatchStatus            `json:"batch"`
	Ingest        IngestStatus           `json:"ingest"`
	Endpoints     map[string]obs.Summary `json:"endpoints"`
	Runtime       RuntimeStatus          `json:"runtime"`
}

func (s *Server) handleDebugStatus(w http.ResponseWriter, _ *http.Request) {
	s.sampleRuntime()
	hits, misses := s.hits.Value(), s.misses.Value()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	resp := &StatusResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Cache: CacheStatus{
			Units:    s.cache.len(),
			Shards:   s.cache.numShards(),
			Hits:     hits,
			Misses:   misses,
			HitRatio: ratio,
			Hit:      s.cache.hitSeconds.Summarize(),
			Compile:  s.cache.compileSeconds.Summarize(),
		},
		Batch: BatchStatus{
			Items:      s.batchItems.Value(),
			ItemErrors: s.batchItemErrors.Value(),
		},
		Ingest: IngestStatus{
			Units:   s.ingest.Len(),
			Shed:    s.shed.Value(),
			Rejects: map[string]int64{},
		},
		Endpoints: map[string]obs.Summary{},
	}
	for name, v := range s.obs.Snapshot() {
		switch {
		case name == "ingest_uploads_total":
			resp.Ingest.Uploads = int64(v)
		case strings.HasPrefix(name, `ingest_rejects_total{reason="`):
			reason := strings.TrimSuffix(strings.TrimPrefix(name, `ingest_rejects_total{reason="`), `"}`)
			resp.Ingest.Rejects[reason] = int64(v)
		}
	}
	for _, ep := range s.endpoints {
		resp.Endpoints[ep] = s.obs.Histogram(obs.Labels("server_request_seconds", "endpoint", ep)).Summarize()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	resp.Runtime = RuntimeStatus{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCRuns:         ms.NumGC,
		GCPauseSeconds: float64(ms.PauseTotalNs) / 1e9,
	}
	writeDebugJSON(w, resp)
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// --- runtime collector ------------------------------------------------------

// sampleRuntime refreshes the runtime_* gauges from the Go runtime.
// Called synchronously by /metrics and /v1/debug/status (scrape-fresh
// values) and periodically by runtimeCollector while Serve runs (so a
// trace Flush or an exposition dump between scrapes still carries
// recent values).
func (s *Server) sampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.obs.Gauge("runtime_goroutines").Set(float64(runtime.NumGoroutine()))
	s.obs.Gauge("runtime_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.obs.Gauge("runtime_heap_sys_bytes").Set(float64(ms.HeapSys))
	s.obs.Gauge("runtime_gc_runs_total").Set(float64(ms.NumGC))
	s.obs.Gauge("runtime_gc_pause_seconds_total").Set(float64(ms.PauseTotalNs) / 1e9)
}

// runtimeCollector samples the runtime gauges every
// Config.RuntimeSampleInterval until ctx is cancelled.
func (s *Server) runtimeCollector(ctx context.Context) {
	t := time.NewTicker(s.cfg.RuntimeSampleInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.sampleRuntime()
		}
	}
}
