// Package linalg provides the dense linear-algebra kernel the Markov
// estimators need: solving Ax = b by Gaussian elimination with partial
// pivoting. The systems are small (one unknown per basic block or per
// function), so a dense O(n³) solver is the right tool.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to the element at (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Solve solves A·x = b in place on copies (A and b are not modified) by
// Gaussian elimination with partial pivoting. It returns ErrSingular if
// no pivot exceeds the tolerance.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: matrix is %d×%d, want square", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs has %d entries, want %d", len(b), n)
	}
	if n == 0 {
		return nil, nil
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	const tol = 1e-12
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best < tol {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vi, vj := m.At(col, j), m.At(pivot, j)
				m.Set(col, j, vj)
				m.Set(pivot, j, vi)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				m.Add(r, j, -f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Residual returns the max-norm of A·x − b, a cheap verification that a
// solution is valid.
func Residual(a *Matrix, x, b []float64) float64 {
	n := a.Rows
	worst := 0.0
	for i := 0; i < n; i++ {
		s := -b[i]
		for j := 0; j < a.Cols; j++ {
			s += a.At(i, j) * x[j]
		}
		if v := math.Abs(s); v > worst {
			worst = v
		}
	}
	return worst
}
