package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{4, 5, 6}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  →  x = 2, y = 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := Solve(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveStrchrSystem(t *testing.T) {
	// The paper's Figure 7 system (entry merged into while):
	// while = 1 + incr; if = .8 while; r1 = .2 if; incr = .8 if; r2 = .2 while
	// Order: while, if, r1, incr, r2.
	a := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		a.Set(i, i, 1)
	}
	a.Set(0, 3, -1)   // while -= incr
	a.Set(1, 0, -0.8) // if -= .8 while
	a.Set(2, 1, -0.2)
	a.Set(3, 1, -0.8)
	a.Set(4, 0, -0.2)
	x, err := Solve(a, []float64{1, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1 / 0.36, 0.8 / 0.36, 0.16 / 0.36, 0.64 / 0.36, 0.2 / 0.36}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := Solve(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Error("wrong rhs length accepted")
	}
	if x, err := Solve(NewMatrix(0, 0), nil); err != nil || x != nil {
		t.Errorf("empty system: %v %v", x, err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	b := []float64{5, 5}
	orig := a.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("Solve mutated the input matrix")
		}
	}
	if b[0] != 5 || b[1] != 5 {
		t.Fatal("Solve mutated the rhs")
	}
}

// Property: for random diagonally-dominant systems (always solvable),
// the residual is tiny.
func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, nRaw uint8) bool {
		rng.Seed(seed)
		n := int(nRaw%20) + 1
		a := NewMatrix(n, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.Float64()*2 - 1
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1+rng.Float64())
			b[i] = rng.Float64()*20 - 10
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 4.5)
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 5 {
		t.Errorf("At = %g, want 5", got)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone shares storage")
	}
}
