package linalg

import (
	"errors"
	"math"
	"testing"
)

// markovMatrix builds the I - Pᵀ system IntraMarkov assembles: one row
// per block, diagonal 1, and -prob[from] in column from for every edge
// from→to. This is the exact shape that degenerates when a CFG region
// cycles with probability 1.
func markovMatrix(n int, edges [][3]float64) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	for _, e := range edges {
		from, to, p := int(e[0]), int(e[1]), e[2]
		a.Add(to, from, -p)
	}
	return a
}

// TestSolveSingularInfiniteLoop: a two-block cycle taken with
// probability 1 (while(1) with no break) yields a rank-deficient
// system — frequencies are unbounded, and the solver must say so with
// the typed error rather than returning garbage.
func TestSolveSingularInfiniteLoop(t *testing.T) {
	// entry(0) -> loop(1), loop -> loop body(2) -> loop, all prob 1.
	a := markovMatrix(3, [][3]float64{
		{0, 1, 1}, // entry feeds the loop head
		{1, 2, 1}, // head always enters the body
		{2, 1, 1}, // body always returns to the head
	})
	_, err := Solve(a, []float64{1, 0, 0})
	if err == nil {
		t.Fatal("probability-1 cycle solved; want ErrSingular")
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// TestSolveSingularRankDeficient: duplicating a row (two blocks with
// identical in-flow equations, as produced by mutually-unreachable
// regions collapsing) leaves the system without a unique solution.
func TestSolveSingularRankDeficient(t *testing.T) {
	a := NewMatrix(3, 3)
	rows := [][]float64{
		{1, -0.5, 0},
		{1, -0.5, 0}, // identical to row 0
		{0, -0.5, 1},
	}
	for i, r := range rows {
		for j, v := range r {
			a.Set(i, j, v)
		}
	}
	_, err := Solve(a, []float64{1, 1, 0})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("rank-deficient system: err = %v, want ErrSingular", err)
	}
}

// TestSolveSingularBelowTolerance: a pivot smaller than the solver's
// 1e-12 tolerance is treated as zero — numerically singular.
func TestSolveSingularBelowTolerance(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1e-13)
	a.Set(1, 1, 1)
	_, err := Solve(a, []float64{1, 1})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("sub-tolerance pivot: err = %v, want ErrSingular", err)
	}
}

// TestSolveIllConditionedStillSolves: a poorly scaled but full-rank
// system (pivot well above tolerance) must solve to finite values with
// a small residual — the solver rejects singularity, not conditioning.
func TestSolveIllConditionedStillSolves(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1e-9)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	b := []float64{1, 2}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("ill-conditioned solve failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 2; j++ {
			s += a.At(i, j) * x[j]
		}
		if math.IsNaN(s) || math.Abs(s-b[i]) > 1e-6 {
			t.Fatalf("residual row %d: got %v, want %v (x=%v)", i, s, b[i], x)
		}
	}
}

// TestSolveNearlySingularMarkov: a loop continuing with probability
// 1-1e-15 is indistinguishable from 1 at float64 precision once
// eliminated; the solver must fail typed instead of emitting enormous
// unstable frequencies.
func TestSolveNearlySingularMarkov(t *testing.T) {
	p := 1 - 1e-15
	a := markovMatrix(2, [][3]float64{
		{0, 1, 1}, // entry -> head
		{1, 1, p}, // head -> head (self-loop, ~prob 1)
	})
	x, err := Solve(a, []float64{1, 0})
	if err == nil {
		// If the pivot squeaks past tolerance the solution must at least
		// be finite; either outcome is acceptable, NaN/Inf is not.
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("near-singular system produced non-finite %v", x)
			}
		}
		return
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}
