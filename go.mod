module staticest

go 1.22
