package staticest

import (
	"math"
	"testing"

	"staticest/internal/core"
	"staticest/internal/metric"
	"staticest/internal/profile"
)

// The paper's running example (Figure 1). Table 2, Figure 3, Figure 6,
// and Figure 7 are all derived from it, so this test pins the whole
// pipeline against published numbers.
const strchrProgram = `
#define NULL 0
char *my_strchr(char *str, int c) {
	while (*str) {
		if (*str == c)
			return str;
		str++;
	}
	return NULL;
}
int main(void) {
	my_strchr("abc", 'a');
	my_strchr("abc", 'b');
	return 0;
}
`

func compileStrchr(t *testing.T) *Unit {
	t.Helper()
	u, err := Compile("strchr.c", []byte(strchrProgram))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return u
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStrchrCFGShape(t *testing.T) {
	u := compileStrchr(t)
	g := u.CFG.Graphs[0]
	if g.Fn.Name() != "my_strchr" {
		t.Fatalf("func 0 is %s", g.Fn.Name())
	}
	// The paper's CFG (Figure 6, with entry merged into the loop test)
	// has 5 blocks: while, if, return1, incr, return2.
	if len(g.Blocks) != 5 {
		t.Fatalf("strchr CFG has %d blocks, want 5:\n%s", len(g.Blocks), g)
	}
}

// blockByName locates a block by its diagnostic name.
func blockFreqByName(t *testing.T, u *Unit, funcIdx int, freqs []float64) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for i, blk := range u.CFG.Graphs[funcIdx].Blocks {
		out[blk.Name] = freqs[i]
	}
	return out
}

func TestStrchrSmartEstimate(t *testing.T) {
	// Figure 3 / Table 2: smart estimates are while=5, if=4, return1=0.8,
	// incr=4, return2=1.
	u := compileStrchr(t)
	est := u.Estimate()
	freqs := blockFreqByName(t, u, 0, est.IntraSmart[0].BlockFreq)
	want := map[string]float64{
		"while.cond": 5,   // while test
		"while.body": 4,   // if test
		"if.then":    0.8, // return str
		"if.end":     4,   // str++
		"while.end":  1,   // return NULL
	}
	for name, w := range want {
		got, ok := freqs[name]
		if !ok {
			t.Fatalf("no block named %s (have %v)", name, freqs)
		}
		if !approx(got, w, 1e-9) {
			t.Errorf("smart estimate of %s = %g, want %g", name, got, w)
		}
	}
}

func TestStrchrMarkovEstimate(t *testing.T) {
	// Figure 7's solution: entry 1 feeds while = 2.78, if = 2.22,
	// return1 = 0.44, incr = 1.78, return2 = 0.56.
	u := compileStrchr(t)
	est := u.Estimate()
	if est.IntraMarkov[0].Fallback {
		t.Fatal("Markov estimator fell back on strchr")
	}
	freqs := blockFreqByName(t, u, 0, est.IntraMarkov[0].BlockFreq)
	want := map[string]float64{
		"while.cond": 1 / 0.36, // 2.777...
		"while.body": 0.8 / 0.36,
		"if.then":    0.2 * 0.8 / 0.36,
		"if.end":     0.8 * 0.8 / 0.36,
		"while.end":  0.2 / 0.36,
	}
	for name, w := range want {
		if got := freqs[name]; !approx(got, w, 1e-6) {
			t.Errorf("markov estimate of %s = %g, want %g", name, got, w)
		}
	}
}

func TestStrchrProfile(t *testing.T) {
	u := compileStrchr(t)
	res, err := u.Run(RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit code %d", res.ExitCode)
	}
	// Searching "abc" for 'a' then 'b': while tests 1+2, if tests 1+2,
	// return1 1+1, incr 0+1, return2 0+0.
	counts := blockFreqByName(t, u, 0, res.Profile.BlockCounts[0])
	want := map[string]float64{
		"while.cond": 3,
		"while.body": 3,
		"if.then":    2,
		"if.end":     1,
		"while.end":  0,
	}
	for name, w := range want {
		if got := counts[name]; got != w {
			t.Errorf("profiled count of %s = %g, want %g", name, got, w)
		}
	}
	if got := res.Profile.FuncCalls[0]; got != 2 {
		t.Errorf("strchr invocations = %g, want 2", got)
	}
	if got := res.Profile.FuncCalls[1]; got != 1 {
		t.Errorf("main invocations = %g, want 1", got)
	}
	for id, c := range res.Profile.CallSiteCounts {
		if c != 1 {
			t.Errorf("call site %d count = %g, want 1", id, c)
		}
	}
}

func TestStrchrWeightMatchingTable2(t *testing.T) {
	// Table 2: the smart estimate scores 100% at the 20% cutoff and 88%
	// (7/8) at the 60% cutoff against the two-call profile.
	u := compileStrchr(t)
	est := u.Estimate()
	res, err := u.Run(RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	estimate := est.IntraSmart[0].BlockFreq
	actual := res.Profile.BlockCounts[0]
	if got := metric.WeightMatch(estimate, actual, 0.20); !approx(got, 1.0, 1e-9) {
		t.Errorf("weight match @20%% = %g, want 1.0", got)
	}
	if got := metric.WeightMatch(estimate, actual, 0.60); !approx(got, 7.0/8.0, 1e-9) {
		t.Errorf("weight match @60%% = %g, want 0.875", got)
	}
}

func TestStrchrBranchPredictions(t *testing.T) {
	u := compileStrchr(t)
	est := u.Estimate()
	if len(est.Pred.Branch) != 2 {
		t.Fatalf("%d branch sites, want 2", len(est.Pred.Branch))
	}
	// Branch 0: the while loop test — predicted to continue (0.8).
	if bp := est.Pred.Branch[0]; bp.Heuristic != "loop" || !approx(bp.ProbTrue, 0.8, 1e-9) {
		t.Errorf("while prediction = %+v, want loop/0.8", bp)
	}
	// Branch 1: `*str == c` — the opcode heuristic predicts equality
	// false (the paper's Figure 3 predicts this if false).
	if bp := est.Pred.Branch[1]; bp.Heuristic != "opcode" || !approx(bp.ProbTrue, 0.2, 1e-9) {
		t.Errorf("if prediction = %+v, want opcode/0.2", bp)
	}
}

func TestStrchrInterEstimates(t *testing.T) {
	u := compileStrchr(t)
	est := u.Estimate()
	// Both call sites sit in main's straight-line entry block, so the
	// call_site estimator gives my_strchr an invocation estimate of 2.
	if got := est.Inter.CallSite[0]; !approx(got, 2, 1e-9) {
		t.Errorf("call_site estimate for my_strchr = %g, want 2", got)
	}
	// The Markov chain injects main = 1 and flows 2 into my_strchr.
	if got := est.InterMarkov.Inv[1]; !approx(got, 1, 1e-9) {
		t.Errorf("markov estimate for main = %g, want 1", got)
	}
	if got := est.InterMarkov.Inv[0]; !approx(got, 2, 1e-9) {
		t.Errorf("markov estimate for my_strchr = %g, want 2", got)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	cases := []struct{ name, src string }{
		{"parse", `int f( { }`},
		{"sem", `int main(void) { return zzz; }`},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.name+".c", []byte(tc.src)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestEstimateWithCustomConfig(t *testing.T) {
	u := compileStrchr(t)
	conf := core.DefaultConfig()
	conf.LoopCount = 10
	est := u.EstimateWith(conf)
	// The while test now runs 10x per entry instead of 5x.
	freqs := blockFreqByName(t, u, 0, est.IntraSmart[0].BlockFreq)
	if !approx(freqs["while.cond"], 10, 1e-9) {
		t.Errorf("loop-count-10 estimate = %g, want 10", freqs["while.cond"])
	}
}

func TestAggregateFacade(t *testing.T) {
	u := compileStrchr(t)
	r1, err := u.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := u.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate([]*profile.Profile{r1.Profile, r2.Profile})
	if err != nil {
		t.Fatal(err)
	}
	if agg.FuncCalls[0] != 4 { // 2 calls per run, two runs
		t.Errorf("aggregate strchr calls = %g, want 4", agg.FuncCalls[0])
	}
}

func TestUnitExposesGraphs(t *testing.T) {
	u := compileStrchr(t)
	if len(u.CFG.Graphs) != len(u.Sem.Funcs) {
		t.Error("graphs not parallel to functions")
	}
	if len(u.Call.Adj) != len(u.Sem.Funcs) {
		t.Error("call graph not parallel to functions")
	}
}
