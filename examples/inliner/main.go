// Inliner is an inlining advisor built on the paper's combined
// intra/inter-procedural call-site estimator (Section 5.3): it ranks
// every direct call site by estimated execution frequency — the number a
// profile-guided inliner would otherwise need a training run to get —
// and proposes an inlining plan under a size budget.
package main

import (
	"fmt"
	"log"
	"sort"

	"staticest/internal/suite"
)

func main() {
	// Use the suite's mini-compiler as the program being optimized.
	prog, err := suite.ByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	unit, err := prog.Compile()
	if err != nil {
		log.Fatal(err)
	}
	est := unit.Estimate()

	type candidate struct {
		caller, callee string
		pos            string
		freq           float64
		bodyBlocks     int
	}
	var cands []candidate
	for _, s := range unit.Sem.CallSites {
		if s.Indirect() {
			continue // calls through pointers cannot be inlined
		}
		callee := s.Callee.FuncIndex
		cands = append(cands, candidate{
			caller:     s.Caller.Name(),
			callee:     s.Callee.Name,
			pos:        s.Call.Pos().String(),
			freq:       est.SiteFreqMarkov[s.ID],
			bodyBlocks: len(unit.CFG.Graphs[callee].Blocks),
		})
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].freq > cands[b].freq })

	fmt.Println("call sites ranked by estimated frequency (markov x markov):")
	fmt.Println("rank  est.freq  size  site")
	budget := 40 // total callee blocks we are willing to duplicate
	spent := 0
	for i, c := range cands {
		marker := " "
		if spent+c.bodyBlocks <= budget && c.freq > 1 {
			marker = "*"
			spent += c.bodyBlocks
		}
		fmt.Printf("%s %3d %9.2f %5d  %s -> %s (%s)\n",
			marker, i+1, c.freq, c.bodyBlocks, c.caller, c.callee, c.pos)
		if i >= 14 {
			fmt.Printf("  ... %d more sites\n", len(cands)-i-1)
			break
		}
	}
	fmt.Printf("\n* = selected for inlining (%d/%d block budget)\n", spent, budget)
}
