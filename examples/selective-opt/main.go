// Selective-opt reproduces the paper's Section 6 experiment as an
// application: use the static Markov invocation estimate to decide which
// functions of compress deserve expensive optimization, then measure the
// speedup curve on a held-out input and compare against profile-guided
// orderings (Figure 10).
package main

import (
	"fmt"
	"log"

	"staticest/internal/eval"
	"staticest/internal/suite"
	"staticest/internal/texttab"
)

func main() {
	prog, err := suite.ByName("compress")
	if err != nil {
		log.Fatal(err)
	}
	data, err := eval.Load(prog)
	if err != nil {
		log.Fatal(err)
	}

	// The paper used gcc -O2 on the selected functions; the interpreter
	// models optimization as a 0.55x per-block cost factor.
	curves, err := eval.Figure10(data, 0.55)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.RenderFigure10(curves))

	// Show which functions the static estimate would optimize first.
	fmt.Println("\nstatic (Markov) optimization order:")
	inv := data.Est.InterMarkov.Inv
	printed := 0
	for _, i := range rankDesc(inv) {
		fmt.Printf("  %2d. %-20s estimate %8.2f\n",
			printed+1, data.Unit.Sem.Funcs[i].Name(), inv[i])
		printed++
		if printed == 6 {
			break
		}
	}
	_ = texttab.Bar // keep the dependency explicit for readers exploring the API
}

func rankDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && v[idx[j]] > v[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}
