// Quickstart walks the paper's running example end to end: compile the
// strchr function, produce static estimates, profile two real calls, and
// compare the two with the weight-matching metric — reproducing Table 2
// and Figures 3, 6, and 7 from a dozen lines of API.
package main

import (
	"fmt"
	"log"
	"strings"

	"staticest"
	"staticest/internal/cast"
	"staticest/internal/metric"
)

const src = `
#define NULL 0
/* Find first occurrence of a character in a string. */
char *my_strchr(char *str, int c) {
	while (*str) {
		if (*str == c)
			return str;
		str++;
	}
	return NULL;
}
int main(void) {
	my_strchr("abc", 'a');
	my_strchr("abc", 'b');
	return 0;
}
`

func main() {
	// 1. Compile: parse, type-check, build CFGs and the call graph.
	unit, err := staticest.Compile("strchr.c", []byte(src))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Static estimates — no execution involved.
	est := unit.Estimate()
	fmt.Println("AST annotated with the smart heuristic's estimated counts:")
	var tree strings.Builder
	cast.FprintTree(&tree, unit.Sem.Funcs[0], func(s cast.Stmt) string {
		if f, ok := est.StmtFreqOf(0)[s]; ok {
			return fmt.Sprintf("%.1f", f)
		}
		return ""
	})
	fmt.Println(tree.String())

	// 3. Profile: run the program under the interpreter.
	res, err := unit.Run(staticest.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare estimate to profile with Wall's weight-matching metric.
	estimate := est.IntraSmart[0].BlockFreq
	markov := est.IntraMarkov[0].BlockFreq
	actual := res.Profile.BlockCounts[0]

	fmt.Println("block          estimate   markov   actual")
	for _, blk := range unit.CFG.Graphs[0].Blocks {
		fmt.Printf("%-12s %10.1f %8.2f %8.0f\n",
			blk.Name, estimate[blk.ID], markov[blk.ID], actual[blk.ID])
	}
	fmt.Printf("\nweight-matching score at 20%% cutoff: %.0f%%\n",
		100*metric.WeightMatch(estimate, actual, 0.20))
	fmt.Printf("weight-matching score at 60%% cutoff: %.1f%%\n",
		100*metric.WeightMatch(estimate, actual, 0.60))
}
