// Branchpredict explains the smart predictor's verdict on every branch
// of a program, then validates the predictions against an actual run —
// showing which of the paper's heuristics fire where and what each one
// is worth.
package main

import (
	"fmt"
	"log"

	"staticest"
	"staticest/internal/cast"
	"staticest/internal/metric"
)

const src = `
#define NULL 0
struct node { int key; struct node *next; };

int lookup(struct node *list, int key) {
	struct node *p = list;
	while (p != NULL) {                 /* loop heuristic: keep looping */
		if (p->key == key)              /* opcode heuristic: == unlikely */
			return 1;
		p = p->next;
	}
	return 0;
}

int safe_div(int a, int b) {
	if (b == 0) {                       /* call heuristic: error arm unlikely */
		puts("divide by zero");
		exit(1);
	}
	return a / b;
}

int process(struct node *list, int n) {
	int i, hits = 0;
	for (i = 0; i < n; i++) {           /* loop heuristic */
		if (lookup(list, i))            /* store heuristic: hits is read later */
			hits = hits + 1;
	}
	return hits;
}

struct node nodes[8];

int main(void) {
	int i;
	for (i = 0; i < 8; i++) {
		nodes[i].key = i * 3;
		nodes[i].next = (i + 1 < 8) ? &nodes[i + 1] : NULL;
	}
	printf("%d %d\n", process(nodes, 20), safe_div(100, 7));
	return 0;
}
`

func main() {
	unit, err := staticest.Compile("demo.c", []byte(src))
	if err != nil {
		log.Fatal(err)
	}
	est := unit.Estimate()
	res, err := unit.Run(staticest.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("branch-by-branch verdicts:")
	fmt.Println("heuristic   p(true)  taken/not  hit%  condition")
	p := res.Profile
	for _, bs := range unit.Sem.BranchSites {
		bp := est.Pred.Branch[bs.ID]
		taken, not := p.BranchTaken[bs.ID], p.BranchNot[bs.ID]
		hit := 0.0
		if taken+not > 0 {
			correct := not
			if bp.Taken() {
				correct = taken
			}
			hit = 100 * correct / (taken + not)
		}
		fmt.Printf("%-10s %7.2f %6.0f/%-5.0f %5.1f  %s @%s\n",
			bp.Heuristic, bp.ProbTrue, taken, not, hit,
			cast.ExprString(bs.Stmt.CondExpr()), bs.Stmt.Pos())
	}

	dirs := make([]bool, len(est.Pred.Branch))
	skip := make([]bool, len(est.Pred.Branch))
	for i, bp := range est.Pred.Branch {
		dirs[i] = bp.Taken()
		skip[i] = bp.Constant
	}
	miss := metric.MissRate(dirs, p.BranchTaken, p.BranchNot, skip)
	psp := metric.PerfectStaticMissRate(p.BranchTaken, p.BranchNot, skip)
	fmt.Printf("\noverall miss rate: %.1f%% (perfect static predictor: %.1f%%)\n",
		miss*100, psp*100)
}
