/* The light preprocessing pass: object-like macros, comments, includes. */
#include <stdio.h>
#include <stdlib.h>
#define N 8
#define GREETING "hi\n"
#define STEP (N / 2)

// line comment with /* tricky */ content
/* block comment
   spanning lines // with a line comment inside */

int main(void) {
	int i;
	char buf[N];
	for (i = 0; i + STEP < N; i++)
		buf[i] = 'a' + i;
	buf[i] = '\0';
	printf(GREETING);
	printf("%s\n", buf);
	return 0;
}
