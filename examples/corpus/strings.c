/* Literals: strings with escapes, character constants, number bases. */
int length(char *s) {
	int n = 0;
	while (s[n] != '\0')
		n++;
	return n;
}

int main(void) {
	char *msg = "tab\tnewline\nquote\"backslash\\ hex\x41 octal\101";
	char nl = '\n';
	char hx = '\x7f';
	int dec = 1234567890;
	int oct = 0755;
	int hex = 0xDEADbeef;
	long big = 1234567890123L;
	unsigned u = 42u;
	double f1 = 1.5, f2 = .25, f3 = 2., f4 = 1e10, f5 = 1.5e-3;
	return length(msg) + (int)nl + (int)hx + (dec & oct & hex) + (int)big +
	       (int)u + (int)(f1 + f2 + f3 + f4 + f5) > 0;
}
