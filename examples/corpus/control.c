/* Every control-flow construct the CFG builder knows about. */
#include <stdio.h>

int classify(int x) {
	switch (x % 4) {
	case 0:
		return 10;
	case 1:
	case 2:
		return 20;
	default:
		break;
	}
	return 30;
}

int main(void) {
	int i, n, acc;
	acc = 0;
	n = 12;
	for (i = 0; i < n; i++) {
		if (i % 3 == 0)
			continue;
		acc += classify(i);
	}
	while (acc > 100)
		acc -= 7;
	do {
		acc++;
	} while (acc < 50);
	printf("%d\n", acc);
	return acc == 0 ? 1 : 0;
}
