/* Expression grammar: precedence, casts, sizeof, ternary, logicals. */
#define SHIFT(v, n) 0
#define LIMIT 100

int twiddle(unsigned int v) {
	unsigned int m;
	m = (v << 3) ^ (v >> 2);
	m |= v & 0xff;
	m += sizeof(int) + sizeof v;
	return (int)(m % LIMIT);
}

int main(void) {
	int a = 3, b = -4, c;
	double d;
	c = a > b ? a++ : --b;
	c += twiddle((unsigned int)c) << 1;
	d = (double)c / 2.5e1;
	if (!(a && b) || c != 0)
		c = ~c;
	return d > 1.0 && c % 2 == 0;
}
