/* The paper's running example: find a character in a string. */
#define NULL 0

char *my_strchr(char *str, int c) {
	while (*str) {
		if (*str == c)
			return str;
		str++;
	}
	return NULL;
}

int main(void) {
	my_strchr("abc", 'a');
	my_strchr("abc", 'b');
	return 0;
}
