/* Declarations: typedefs, structs, unions, enums, arrays, pointers. */
typedef struct point {
	int x;
	int y;
} Point;

union word {
	int i;
	char bytes[4];
};

enum color { RED, GREEN = 5, BLUE };

typedef int (*binop)(int, int);

static int add(int a, int b) { return a + b; }

int sum(Point *ps, int n) {
	int i;
	int total = 0;
	for (i = 0; i < n; i++)
		total = add(total, ps[i].x + ps[i].y);
	return total;
}

int main(void) {
	Point grid[3];
	union word w;
	binop f;
	int i;
	for (i = 0; i < 3; i++) {
		grid[i].x = i;
		grid[i].y = i * (int)BLUE;
	}
	w.i = 7;
	f = add;
	return f(sum(grid, 3), w.bytes[0]) & GREEN;
}
