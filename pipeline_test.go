package staticest_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"staticest"
	"staticest/internal/cfg"
)

// This file generates random (but always-terminating) C programs and
// checks pipeline-wide invariants that must hold for ANY program:
//
//   - the CFG entry block executes exactly as often as the function is
//     invoked;
//   - a branch site's taken+not-taken counts equal its condition
//     block's execution count;
//   - a switch site's arm counts sum to its dispatch block's count;
//   - every static estimate is finite and non-negative;
//   - the interpreter terminates within budget and is deterministic.
//
// This is the closest thing to a fuzzer the harness runs by default; it
// has caught block-mapping bugs that hand-written tests missed.

type progGen struct {
	rng   *rand.Rand
	sb    strings.Builder
	depth int
	loops int
}

func (g *progGen) emit(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("\t", g.depth+1))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// expr produces a side-effect-free integer expression over a..d.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%d", g.rng.Intn(20)-5)
		}
		return string(rune('a' + g.rng.Intn(4)))
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<", ">", "=="}
	op := ops[g.rng.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
}

func (g *progGen) stmt() {
	if g.depth > 3 {
		g.emit("%c = %s;", 'a'+g.rng.Intn(4), g.expr(2))
		return
	}
	switch g.rng.Intn(7) {
	case 0: // bounded for loop with a fresh counter
		g.loops++
		v := fmt.Sprintf("i%d", g.loops)
		g.emit("{ int %s;", v)
		g.emit("for (%s = 0; %s < %d; %s++) {", v, v, g.rng.Intn(6)+1, v)
		g.depth++
		g.block(1 + g.rng.Intn(2))
		g.depth--
		g.emit("} }")
	case 1: // if / if-else
		g.emit("if (%s) {", g.expr(2))
		g.depth++
		g.block(1 + g.rng.Intn(2))
		g.depth--
		if g.rng.Intn(2) == 0 {
			g.emit("} else {")
			g.depth++
			g.block(1)
			g.depth--
		}
		g.emit("}")
	case 2: // switch
		g.emit("switch (%s & 3) {", g.expr(1))
		for c := 0; c < 2+g.rng.Intn(2); c++ {
			g.emit("case %d:", c)
			g.depth++
			g.block(1)
			if g.rng.Intn(3) > 0 {
				g.emit("break;")
			}
			g.depth--
		}
		if g.rng.Intn(2) == 0 {
			g.emit("default:")
			g.depth++
			g.block(1)
			g.depth--
		}
		g.emit("}")
	case 3: // call the helper
		g.emit("%c = helper(%s, %s);", 'a'+g.rng.Intn(4), g.expr(1), g.expr(1))
	case 4: // bounded while with decrementing guard
		g.loops++
		v := fmt.Sprintf("w%d", g.loops)
		g.emit("{ int %s = %d;", v, g.rng.Intn(5)+1)
		g.emit("while (%s > 0) {", v)
		g.depth++
		g.block(1)
		g.emit("%s--;", v)
		g.depth--
		g.emit("} }")
	default:
		g.emit("%c = %s;", 'a'+g.rng.Intn(4), g.expr(2))
	}
}

func (g *progGen) block(n int) {
	for i := 0; i < n; i++ {
		g.depth++
		g.stmt()
		g.depth--
	}
}

func generateProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.sb.WriteString("int helper(int x, int y) {\n")
	g.sb.WriteString("\tif (x > y) return x - y;\n")
	g.sb.WriteString("\treturn y - x + 1;\n}\n")
	g.sb.WriteString("int main(void) {\n")
	g.sb.WriteString("\tint a = 1, b = 2, c = 3, d = 4;\n")
	for i := 0; i < 4+g.rng.Intn(5); i++ {
		g.stmt()
	}
	g.sb.WriteString("\treturn (a + b + c + d) & 127;\n}\n")
	return g.sb.String()
}

func TestPipelineInvariantsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		src := generateProgram(seed)
		u, err := staticest.Compile(fmt.Sprintf("rand%d.c", seed), []byte(src))
		if err != nil {
			t.Fatalf("seed %d: compile: %v\nsource:\n%s", seed, err, src)
		}
		res, err := u.Run(staticest.RunOptions{MaxSteps: 2_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v\nsource:\n%s", seed, err, src)
		}
		res2, err := u.Run(staticest.RunOptions{MaxSteps: 2_000_000})
		if err != nil || res2.Steps != res.Steps {
			t.Fatalf("seed %d: nondeterministic (%v)", seed, err)
		}
		p := res.Profile

		for fi, g := range u.CFG.Graphs {
			// Entry executions == invocations (unless the entry doubles
			// as a loop header, which re-executes via back edges).
			if len(g.Entry.Preds) == 0 {
				if got := p.BlockCounts[fi][g.Entry.ID]; got != p.FuncCalls[fi] {
					t.Errorf("seed %d %s: entry count %g != invocations %g",
						seed, g.Fn.Name(), got, p.FuncCalls[fi])
				}
			}
			for _, blk := range g.Blocks {
				count := p.BlockCounts[fi][blk.ID]
				switch blk.Term {
				case cfg.TermCond:
					if blk.BranchSite >= 0 {
						tn := p.BranchTaken[blk.BranchSite] + p.BranchNot[blk.BranchSite]
						if tn != count {
							t.Errorf("seed %d %s b%d: branch outcomes %g != block count %g",
								seed, g.Fn.Name(), blk.ID, tn, count)
						}
					}
				case cfg.TermSwitch:
					if blk.SwitchSite >= 0 {
						sum := 0.0
						for _, c := range p.SwitchArm[blk.SwitchSite] {
							sum += c
						}
						if sum != count {
							t.Errorf("seed %d %s b%d: switch arms %g != block count %g",
								seed, g.Fn.Name(), blk.ID, sum, count)
						}
					}
				}
			}
		}

		// Every estimate must be finite and non-negative.
		est := u.Estimate()
		checkVec := func(name string, vs []float64) {
			for i, v := range vs {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("seed %d: %s[%d] = %g\nsource:\n%s", seed, name, i, v, src)
				}
			}
		}
		checkVec("InvMarkov", est.InterMarkov.Inv)
		checkVec("Direct", est.Inter.Direct)
		for fi := range u.Sem.Funcs {
			checkVec("IntraSmart", est.IntraSmart[fi].BlockFreq)
			checkVec("IntraMarkov", est.IntraMarkov[fi].BlockFreq)
			checkVec("IntraLoop", est.IntraLoop[fi].BlockFreq)
		}
	}
}
